//! NGCF (Wang et al., SIGIR'19): embeddings propagated over the user-item
//! bipartite graph, BPR-trained.
//!
//! Implemented in the *simplified linear propagation* form validated by
//! LightGCN (He et al., SIGIR'20): the per-layer feature transforms
//! `W₁/W₂` and non-linearities are dropped, leaving
//!
//! `Ê = (E + ÂE + Â²E) / 3`, `ŷ(u,i) = ê_uᵀ ê_i`
//!
//! with `Â` the symmetrically normalised adjacency. The propagation is
//! linear, so backpropagation through it is exact: `∂L/∂E = (I + Â + Â²)ᵀ
//! ∂L/∂Ê / 3 = (I + Â + Â²) ∂L/∂Ê / 3` (`Â` is symmetric). This
//! substitution is documented in DESIGN.md.

use crate::common::{PairCodec, Scorer};
use crate::mf::MfConfig;
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::bpr;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Symmetrically normalised sparse bipartite adjacency in CSR-like form.
#[derive(Debug, Clone)]
struct NormAdjacency {
    /// Flattened neighbour lists: `(neighbour, weight)`.
    edges: Vec<(u32, f64)>,
    /// Row offsets into `edges` (one per node, +1 sentinel).
    offsets: Vec<usize>,
}

impl NormAdjacency {
    /// Builds `Â` over `n_users + n_items` nodes (users first).
    fn build(pairs: &[(u32, u32)], n_users: usize, n_items: usize) -> Self {
        let n = n_users + n_items;
        let mut degree = vec![0usize; n];
        for &(u, i) in pairs {
            degree[u as usize] += 1;
            degree[n_users + i as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut edges = vec![(0u32, 0.0); offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, i) in pairs {
            let (un, inode) = (u as usize, n_users + i as usize);
            let w = 1.0 / ((degree[un] as f64).sqrt() * (degree[inode] as f64).sqrt());
            edges[cursor[un]] = (inode as u32, w);
            cursor[un] += 1;
            edges[cursor[inode]] = (un as u32, w);
            cursor[inode] += 1;
        }
        Self { edges, offsets }
    }

    /// `out = Â x` (dense columns).
    fn propagate(&self, x: &Matrix, out: &mut Matrix) {
        out.fill_zero();
        let k = x.cols();
        for node in 0..self.offsets.len() - 1 {
            for &(nbr, w) in &self.edges[self.offsets[node]..self.offsets[node + 1]] {
                let src = x.row(nbr as usize);
                let dst = out.row_mut(node);
                for d in 0..k {
                    dst[d] += w * src[d];
                }
            }
        }
    }
}

/// NGCF model (simplified propagation).
#[derive(Debug, Clone)]
pub struct Ngcf {
    codec: PairCodec,
    /// Raw embeddings `E` over users-then-items nodes.
    e: Matrix,
    /// Propagated embeddings `Ê`, refreshed each training step and after
    /// training for scoring.
    e_hat: Matrix,
    adj: Option<NormAdjacency>,
    cfg: MfConfig,
    hops: usize,
}

impl Ngcf {
    /// Creates an untrained NGCF with 2-hop propagation.
    pub fn new(codec: PairCodec, cfg: MfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let n = codec.n_users() + codec.n_items();
        // 0.1 std rather than the FM-family 0.01: the propagated inner
        // product needs larger magnitudes to break symmetry under BPR.
        let e = normal(&mut rng, n, cfg.k, 0.0, 0.1);
        let e_hat = e.clone();
        Self { codec, e, e_hat, adj: None, cfg, hops: 2 }
    }

    /// `Ê = (E + ÂE + Â²E) / (hops+1)`.
    fn refresh_propagation(&mut self) {
        let Some(adj) = &self.adj else {
            self.e_hat = self.e.clone();
            return;
        };
        let mut acc = self.e.clone();
        let mut layer = self.e.clone();
        let mut buf = Matrix::zeros(self.e.rows(), self.e.cols());
        for _ in 0..self.hops {
            adj.propagate(&layer, &mut buf);
            std::mem::swap(&mut layer, &mut buf);
            acc += &layer;
        }
        acc.scale_inplace(1.0 / (self.hops + 1) as f64);
        self.e_hat = acc;
    }

    /// Backpropagates `∂L/∂Ê` to `∂L/∂E` through the linear propagation.
    fn backprop_propagation(&self, d_hat: &Matrix) -> Matrix {
        let Some(adj) = &self.adj else { return d_hat.clone() };
        let mut acc = d_hat.clone();
        let mut layer = d_hat.clone();
        let mut buf = Matrix::zeros(d_hat.rows(), d_hat.cols());
        for _ in 0..self.hops {
            adj.propagate(&layer, &mut buf);
            std::mem::swap(&mut layer, &mut buf);
            acc += &layer;
        }
        acc.scale_inplace(1.0 / (self.hops + 1) as f64);
        acc
    }

    /// Trains with BPR over sampled triples; returns mean loss per epoch.
    pub fn fit(&mut self, train_pairs: &[(u32, u32)], user_items: &[HashSet<u32>]) -> Vec<f64> {
        assert!(!train_pairs.is_empty(), "Ngcf::fit: no training pairs");
        self.adj = Some(NormAdjacency::build(train_pairs, self.codec.n_users(), self.codec.n_items()));
        let n_items = self.codec.n_items();
        let n_users = self.codec.n_users();
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train_pairs.len()).collect();
        let (lr, reg, k) = (self.cfg.lr, self.cfg.reg, self.cfg.k);
        let batch = 512usize;
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        let mut d_hat = Matrix::zeros(self.e.rows(), self.e.cols());

        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for chunk in order.chunks(batch) {
                self.refresh_propagation();
                d_hat.fill_zero();
                for &idx in chunk {
                    let (u, i) = train_pairs[idx];
                    let (u, i) = (u as usize, i as usize);
                    let j = loop {
                        let cand = rng.gen_range(0..n_items) as u32;
                        if !user_items[u].contains(&cand) {
                            break cand as usize;
                        }
                    };
                    let (ui, ii, ji) = (u, n_users + i, n_users + j);
                    let mut x_uij = 0.0;
                    for d in 0..k {
                        x_uij += self.e_hat[(ui, d)] * (self.e_hat[(ii, d)] - self.e_hat[(ji, d)]);
                    }
                    let (loss, gq) = bpr(x_uij);
                    total += loss;
                    for d in 0..k {
                        let eu = self.e_hat[(ui, d)];
                        let ei = self.e_hat[(ii, d)];
                        let ej = self.e_hat[(ji, d)];
                        d_hat[(ui, d)] += gq * (ei - ej);
                        d_hat[(ii, d)] += gq * eu;
                        d_hat[(ji, d)] -= gq * eu;
                    }
                }
                // Summed (not averaged) batch gradient: matches the update
                // magnitude of the per-instance SGD used by BPR-MF.
                let mut d_e = self.backprop_propagation(&d_hat);
                d_e.axpy(reg, &self.e);
                self.e.axpy(-lr, &d_e);
            }
            losses.push(total / train_pairs.len() as f64);
        }
        self.refresh_propagation();
        losses
    }

    /// Score from the propagated embeddings.
    pub fn predict_pair(&self, u: usize, i: usize) -> f64 {
        let item_node = self.codec.n_users() + i;
        let mut dot = 0.0;
        for d in 0..self.cfg.k {
            dot += self.e_hat[(u, d)] * self.e_hat[(item_node, d)];
        }
        dot
    }
}

impl Scorer for Ngcf {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        instances
            .iter()
            .map(|inst| {
                let (u, i) = self.codec.decode(inst);
                self.predict_pair(u, i)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, DatasetSpec, FieldMask};

    #[test]
    fn adjacency_rows_are_symmetric() {
        let pairs = vec![(0u32, 0u32), (0, 1), (1, 1)];
        let adj = NormAdjacency::build(&pairs, 2, 2);
        // Â is symmetric: propagate a one-hot and check transposed entry.
        let n = 4;
        for a in 0..n {
            let mut x = Matrix::zeros(n, 1);
            x[(a, 0)] = 1.0;
            let mut out = Matrix::zeros(n, 1);
            adj.propagate(&x, &mut out);
            for b in 0..n {
                let mut y = Matrix::zeros(n, 1);
                y[(b, 0)] = 1.0;
                let mut out_b = Matrix::zeros(n, 1);
                adj.propagate(&y, &mut out_b);
                assert!((out[(b, 0)] - out_b[(a, 0)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn propagation_averages_with_identity() {
        // With no edges Ê must equal E.
        let codec = PairCodec::from_sizes(3, 3);
        let mut model = Ngcf::new(codec, MfConfig { k: 4, ..MfConfig::default() });
        model.refresh_propagation();
        assert!(gmlfm_tensor::approx_eq(&model.e_hat, &model.e, 0.0));
    }

    #[test]
    fn ngcf_learns_to_rank_training_pairs() {
        let d = generate(&DatasetSpec::AmazonAuto.config(111).scaled(0.25));
        let mask = FieldMask::base(&d.schema);
        let split = loo_split(&d, &mask, 2, 10, 23);
        let codec = PairCodec::from_schema(&d.schema);
        let mut model = Ngcf::new(codec, MfConfig { epochs: 30, lr: 0.02, ..MfConfig::default() });
        let losses = model.fit(&split.train_pairs, &split.train_user_items);
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");

        let mut wins = 0usize;
        let mut total = 0usize;
        for &(u, i) in split.train_pairs.iter().take(200) {
            let pos = model.predict_pair(u as usize, i as usize);
            for j in 0..3 {
                let cand = (i as usize + 101 * (j + 1)) % d.n_items;
                if split.train_user_items[u as usize].contains(&(cand as u32)) {
                    continue;
                }
                total += 1;
                if pos > model.predict_pair(u as usize, cand) {
                    wins += 1;
                }
            }
        }
        let auc = wins as f64 / total as f64;
        assert!(auc > 0.7, "training AUC {auc}");
    }
}
