//! Matrix factorization baselines for rating prediction: MF and PMF.

use crate::common::{PairCodec, Scorer};
use gmlfm_data::Instance;
use gmlfm_par::RacySlice;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::squared;
use rand::seq::SliceRandom;

/// Training hyper-parameters shared by the hand-derived factorization
/// models in this module.
#[derive(Debug, Clone)]
pub struct MfConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// L2 regularisation strength (the Gaussian-prior precision in PMF).
    pub reg: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        Self { k: 16, lr: 0.02, reg: 0.02, epochs: 30, seed: 7 }
    }
}

/// Biased matrix factorization (Koren-style):
/// `ŷ(u,i) = μ + b_u + b_i + p_uᵀ q_i`, trained with per-instance SGD on
/// the squared loss.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    codec: PairCodec,
    mu: f64,
    bu: Vec<f64>,
    bi: Vec<f64>,
    p: Matrix,
    q: Matrix,
    cfg: MfConfig,
}

impl MatrixFactorization {
    /// Creates an untrained model.
    pub fn new(codec: PairCodec, cfg: MfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let p = normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01);
        let q = normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01);
        Self { codec, mu: 0.0, bu: vec![0.0; codec.n_users()], bi: vec![0.0; codec.n_items()], p, q, cfg }
    }

    /// Trains on labelled instances; returns the mean training loss per
    /// epoch.
    pub fn fit(&mut self, train: &[Instance]) -> Vec<f64> {
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let (lr, reg) = (self.cfg.lr, self.cfg.reg);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let inst = &train[idx];
                let (u, i) = self.codec.decode(inst);
                let pred = self.predict_pair(u, i);
                let (loss, g) = squared(pred, inst.label);
                total += loss;
                self.mu -= lr * g;
                self.bu[u] -= lr * (g + reg * self.bu[u]);
                self.bi[i] -= lr * (g + reg * self.bi[i]);
                for d in 0..self.cfg.k {
                    let pu = self.p[(u, d)];
                    let qi = self.q[(i, d)];
                    self.p[(u, d)] -= lr * (g * qi + reg * pu);
                    self.q[(i, d)] -= lr * (g * pu + reg * qi);
                }
            }
            losses.push(total / train.len().max(1) as f64);
        }
        losses
    }

    /// [`MatrixFactorization::fit`] in Hogwild! epoch mode: each epoch's
    /// shuffled instances are split into one contiguous block per worker
    /// and the per-instance SGD updates run concurrently over the
    /// **shared** `μ`/`b_u`/`b_i`/`P`/`Q` buffers with no locks (see
    /// [`gmlfm_par::hogwild`] for the benign-race contract — each
    /// instance touches one user row and one item row, so collisions
    /// are rare and statistically benign).
    ///
    /// `threads <= 1` falls back to the serial fit, bit-for-bit; more
    /// threads trade run-to-run reproducibility for throughput, which is
    /// why the mode is opt-in.
    pub fn fit_hogwild(&mut self, train: &[Instance], threads: usize) -> Vec<f64> {
        if threads <= 1 {
            return self.fit(train);
        }
        let MfConfig { k, lr, reg, epochs, seed } = self.cfg.clone();
        let mut rng = seeded_rng(seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut losses = Vec::with_capacity(epochs);
        let codec = self.codec;
        // Disjoint racy views over the shared parameters.
        let Self { mu, bu, bi, p, q, .. } = self;
        let mu_cell = RacySlice::new(std::slice::from_mut(mu));
        let bu_cell = RacySlice::new(bu.as_mut_slice());
        let bi_cell = RacySlice::new(bi.as_mut_slice());
        let p_cell = RacySlice::new(p.as_mut_slice());
        let q_cell = RacySlice::new(q.as_mut_slice());
        let (mu_cell, bu_cell, bi_cell, p_cell, q_cell) = (&mu_cell, &bu_cell, &bi_cell, &p_cell, &q_cell);
        let pool = gmlfm_par::global();
        let block_len = train.len().div_ceil(threads).max(1);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut totals = vec![0.0f64; order.len().div_ceil(block_len)];
            pool.scoped(|s| {
                for (block, total) in order.chunks(block_len).zip(totals.iter_mut()) {
                    s.spawn(move || {
                        // NOTE: mirrors the serial `fit` update math —
                        // keep the two in lockstep.
                        let mut block_loss = 0.0;
                        for &idx in block {
                            let inst = &train[idx];
                            let (u, i) = codec.decode(inst);
                            let mut dot = 0.0;
                            for d in 0..k {
                                dot += p_cell.load(u * k + d) * q_cell.load(i * k + d);
                            }
                            let pred = mu_cell.load(0) + bu_cell.load(u) + bi_cell.load(i) + dot;
                            let (loss, g) = squared(pred, inst.label);
                            block_loss += loss;
                            // μ is dense (every worker, every instance):
                            // the lossless CAS add keeps it unbiased.
                            mu_cell.fetch_add(0, -lr * g);
                            bu_cell.add(u, -lr * (g + reg * bu_cell.load(u)));
                            bi_cell.add(i, -lr * (g + reg * bi_cell.load(i)));
                            for d in 0..k {
                                let pu = p_cell.load(u * k + d);
                                let qi = q_cell.load(i * k + d);
                                p_cell.add(u * k + d, -lr * (g * qi + reg * pu));
                                q_cell.add(i * k + d, -lr * (g * pu + reg * qi));
                            }
                        }
                        *total = block_loss;
                    });
                }
            });
            losses.push(totals.iter().sum::<f64>() / train.len().max(1) as f64);
        }
        losses
    }

    /// Raw prediction for a `(user, item)` pair.
    pub fn predict_pair(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for d in 0..self.cfg.k {
            dot += self.p[(u, d)] * self.q[(i, d)];
        }
        self.mu + self.bu[u] + self.bi[i] + dot
    }
}

impl Scorer for MatrixFactorization {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        instances
            .iter()
            .map(|inst| {
                let (u, i) = self.codec.decode(inst);
                self.predict_pair(u, i)
            })
            .collect()
    }
}

/// Probabilistic matrix factorization (Mnih & Salakhutdinov, NIPS'08):
/// `ŷ(u,i) = p_uᵀ q_i` with zero-mean Gaussian priors on both factor
/// matrices, equivalent to L2-regularised SGD on the squared loss.
#[derive(Debug, Clone)]
pub struct Pmf {
    codec: PairCodec,
    p: Matrix,
    q: Matrix,
    cfg: MfConfig,
}

impl Pmf {
    /// Creates an untrained model.
    pub fn new(codec: PairCodec, cfg: MfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let p = normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01);
        let q = normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01);
        Self { codec, p, q, cfg }
    }

    /// Trains on labelled instances; returns mean loss per epoch.
    pub fn fit(&mut self, train: &[Instance]) -> Vec<f64> {
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let (lr, reg) = (self.cfg.lr, self.cfg.reg);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let inst = &train[idx];
                let (u, i) = self.codec.decode(inst);
                let pred = self.predict_pair(u, i);
                let (loss, g) = squared(pred, inst.label);
                total += loss;
                for d in 0..self.cfg.k {
                    let pu = self.p[(u, d)];
                    let qi = self.q[(i, d)];
                    self.p[(u, d)] -= lr * (g * qi + reg * pu);
                    self.q[(i, d)] -= lr * (g * pu + reg * qi);
                }
            }
            losses.push(total / train.len().max(1) as f64);
        }
        losses
    }

    /// [`Pmf::fit`] in Hogwild! epoch mode; see
    /// [`MatrixFactorization::fit_hogwild`] for the semantics
    /// (`threads <= 1` is the exact serial fit; more threads run the
    /// same sparse updates lock-free over the shared factor matrices).
    pub fn fit_hogwild(&mut self, train: &[Instance], threads: usize) -> Vec<f64> {
        if threads <= 1 {
            return self.fit(train);
        }
        let MfConfig { k, lr, reg, epochs, seed } = self.cfg.clone();
        let mut rng = seeded_rng(seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut losses = Vec::with_capacity(epochs);
        let codec = self.codec;
        let Self { p, q, .. } = self;
        let p_cell = RacySlice::new(p.as_mut_slice());
        let q_cell = RacySlice::new(q.as_mut_slice());
        let (p_cell, q_cell) = (&p_cell, &q_cell);
        let pool = gmlfm_par::global();
        let block_len = train.len().div_ceil(threads).max(1);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut totals = vec![0.0f64; order.len().div_ceil(block_len)];
            pool.scoped(|s| {
                for (block, total) in order.chunks(block_len).zip(totals.iter_mut()) {
                    s.spawn(move || {
                        // NOTE: mirrors the serial `fit` update math —
                        // keep the two in lockstep.
                        let mut block_loss = 0.0;
                        for &idx in block {
                            let inst = &train[idx];
                            let (u, i) = codec.decode(inst);
                            let mut pred = 0.0;
                            for d in 0..k {
                                pred += p_cell.load(u * k + d) * q_cell.load(i * k + d);
                            }
                            let (loss, g) = squared(pred, inst.label);
                            block_loss += loss;
                            for d in 0..k {
                                let pu = p_cell.load(u * k + d);
                                let qi = q_cell.load(i * k + d);
                                p_cell.add(u * k + d, -lr * (g * qi + reg * pu));
                                q_cell.add(i * k + d, -lr * (g * pu + reg * qi));
                            }
                        }
                        *total = block_loss;
                    });
                }
            });
            losses.push(totals.iter().sum::<f64>() / train.len().max(1) as f64);
        }
        losses
    }

    /// Raw prediction for a `(user, item)` pair.
    pub fn predict_pair(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for d in 0..self.cfg.k {
            dot += self.p[(u, d)] * self.q[(i, d)];
        }
        dot
    }
}

impl Scorer for Pmf {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        instances
            .iter()
            .map(|inst| {
                let (u, i) = self.codec.decode(inst);
                self.predict_pair(u, i)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};

    fn tiny_split() -> (PairCodec, Vec<Instance>, Vec<Instance>) {
        let d = generate(&DatasetSpec::AmazonAuto.config(21).scaled(0.25));
        let mask = FieldMask::base(&d.schema);
        let s = rating_split(&d, &mask, 2, 3);
        (PairCodec::from_schema(&d.schema), s.train, s.test)
    }

    #[test]
    fn mf_loss_decreases_and_beats_constant_predictor() {
        let (codec, train, test) = tiny_split();
        let mut mf = MatrixFactorization::new(codec, MfConfig { epochs: 25, ..MfConfig::default() });
        let losses = mf.fit(&train);
        assert!(losses.last().unwrap() < &(losses[0] * 0.8), "losses {losses:?}");
        // The model separates held-out positives from negatives: the mean
        // score of positive test instances must exceed that of negatives
        // (a constant predictor scores them identically).
        let preds = mf.scores(&test);
        let mut pos = (0.0, 0usize);
        let mut neg = (0.0, 0usize);
        for (p, i) in preds.iter().zip(&test) {
            if i.label > 0.0 {
                pos = (pos.0 + p, pos.1 + 1);
            } else {
                neg = (neg.0 + p, neg.1 + 1);
            }
        }
        let (pos_mean, neg_mean) = (pos.0 / pos.1 as f64, neg.0 / neg.1 as f64);
        assert!(pos_mean > neg_mean, "pos mean {pos_mean} vs neg mean {neg_mean}");
    }

    #[test]
    fn pmf_trains_and_scores_finitely() {
        let (codec, train, test) = tiny_split();
        let mut pmf = Pmf::new(codec, MfConfig { epochs: 15, ..MfConfig::default() });
        let losses = pmf.fit(&train);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(pmf.scores(&test).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let (codec, train, _) = tiny_split();
        let cfg = MfConfig { epochs: 5, ..MfConfig::default() };
        let mut a = MatrixFactorization::new(codec, cfg.clone());
        let mut b = MatrixFactorization::new(codec, cfg);
        let la = a.fit(&train);
        let lb = b.fit(&train);
        assert_eq!(la, lb);
    }

    #[test]
    fn hogwild_single_thread_is_the_serial_fit() {
        let (codec, train, _) = tiny_split();
        let cfg = MfConfig { epochs: 4, ..MfConfig::default() };
        let mut serial = MatrixFactorization::new(codec, cfg.clone());
        let mut hog = MatrixFactorization::new(codec, cfg);
        assert_eq!(serial.fit(&train), hog.fit_hogwild(&train, 1));
    }

    #[test]
    fn hogwild_mf_and_pmf_still_learn() {
        let (codec, train, _) = tiny_split();
        let mut mf = MatrixFactorization::new(codec, MfConfig { epochs: 25, ..MfConfig::default() });
        let losses = mf.fit_hogwild(&train, 3);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() < &(losses[0] * 0.8), "MF losses {losses:?}");
        let mut pmf = Pmf::new(codec, MfConfig { epochs: 15, ..MfConfig::default() });
        let losses = pmf.fit_hogwild(&train, 3);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() < &losses[0], "PMF losses {losses:?}");
    }
}
