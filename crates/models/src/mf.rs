//! Matrix factorization baselines for rating prediction: MF and PMF.

use crate::common::{PairCodec, Scorer};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::squared;
use rand::seq::SliceRandom;

/// Training hyper-parameters shared by the hand-derived factorization
/// models in this module.
#[derive(Debug, Clone)]
pub struct MfConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// L2 regularisation strength (the Gaussian-prior precision in PMF).
    pub reg: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        Self { k: 16, lr: 0.02, reg: 0.02, epochs: 30, seed: 7 }
    }
}

/// Biased matrix factorization (Koren-style):
/// `ŷ(u,i) = μ + b_u + b_i + p_uᵀ q_i`, trained with per-instance SGD on
/// the squared loss.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    codec: PairCodec,
    mu: f64,
    bu: Vec<f64>,
    bi: Vec<f64>,
    p: Matrix,
    q: Matrix,
    cfg: MfConfig,
}

impl MatrixFactorization {
    /// Creates an untrained model.
    pub fn new(codec: PairCodec, cfg: MfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let p = normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01);
        let q = normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01);
        Self { codec, mu: 0.0, bu: vec![0.0; codec.n_users()], bi: vec![0.0; codec.n_items()], p, q, cfg }
    }

    /// Trains on labelled instances; returns the mean training loss per
    /// epoch.
    pub fn fit(&mut self, train: &[Instance]) -> Vec<f64> {
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let (lr, reg) = (self.cfg.lr, self.cfg.reg);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let inst = &train[idx];
                let (u, i) = self.codec.decode(inst);
                let pred = self.predict_pair(u, i);
                let (loss, g) = squared(pred, inst.label);
                total += loss;
                self.mu -= lr * g;
                self.bu[u] -= lr * (g + reg * self.bu[u]);
                self.bi[i] -= lr * (g + reg * self.bi[i]);
                for d in 0..self.cfg.k {
                    let pu = self.p[(u, d)];
                    let qi = self.q[(i, d)];
                    self.p[(u, d)] -= lr * (g * qi + reg * pu);
                    self.q[(i, d)] -= lr * (g * pu + reg * qi);
                }
            }
            losses.push(total / train.len().max(1) as f64);
        }
        losses
    }

    /// Raw prediction for a `(user, item)` pair.
    pub fn predict_pair(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for d in 0..self.cfg.k {
            dot += self.p[(u, d)] * self.q[(i, d)];
        }
        self.mu + self.bu[u] + self.bi[i] + dot
    }
}

impl Scorer for MatrixFactorization {
    fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
        instances
            .iter()
            .map(|inst| {
                let (u, i) = self.codec.decode(inst);
                self.predict_pair(u, i)
            })
            .collect()
    }
}

/// Probabilistic matrix factorization (Mnih & Salakhutdinov, NIPS'08):
/// `ŷ(u,i) = p_uᵀ q_i` with zero-mean Gaussian priors on both factor
/// matrices, equivalent to L2-regularised SGD on the squared loss.
#[derive(Debug, Clone)]
pub struct Pmf {
    codec: PairCodec,
    p: Matrix,
    q: Matrix,
    cfg: MfConfig,
}

impl Pmf {
    /// Creates an untrained model.
    pub fn new(codec: PairCodec, cfg: MfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let p = normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01);
        let q = normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01);
        Self { codec, p, q, cfg }
    }

    /// Trains on labelled instances; returns mean loss per epoch.
    pub fn fit(&mut self, train: &[Instance]) -> Vec<f64> {
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let (lr, reg) = (self.cfg.lr, self.cfg.reg);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let inst = &train[idx];
                let (u, i) = self.codec.decode(inst);
                let pred = self.predict_pair(u, i);
                let (loss, g) = squared(pred, inst.label);
                total += loss;
                for d in 0..self.cfg.k {
                    let pu = self.p[(u, d)];
                    let qi = self.q[(i, d)];
                    self.p[(u, d)] -= lr * (g * qi + reg * pu);
                    self.q[(i, d)] -= lr * (g * pu + reg * qi);
                }
            }
            losses.push(total / train.len().max(1) as f64);
        }
        losses
    }

    /// Raw prediction for a `(user, item)` pair.
    pub fn predict_pair(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for d in 0..self.cfg.k {
            dot += self.p[(u, d)] * self.q[(i, d)];
        }
        dot
    }
}

impl Scorer for Pmf {
    fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
        instances
            .iter()
            .map(|inst| {
                let (u, i) = self.codec.decode(inst);
                self.predict_pair(u, i)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};

    fn tiny_split() -> (PairCodec, Vec<Instance>, Vec<Instance>) {
        let d = generate(&DatasetSpec::AmazonAuto.config(21).scaled(0.25));
        let mask = FieldMask::base(&d.schema);
        let s = rating_split(&d, &mask, 2, 3);
        (PairCodec::from_schema(&d.schema), s.train, s.test)
    }

    #[test]
    fn mf_loss_decreases_and_beats_constant_predictor() {
        let (codec, train, test) = tiny_split();
        let mut mf = MatrixFactorization::new(codec, MfConfig { epochs: 25, ..MfConfig::default() });
        let losses = mf.fit(&train);
        assert!(losses.last().unwrap() < &(losses[0] * 0.8), "losses {losses:?}");
        // The model separates held-out positives from negatives: the mean
        // score of positive test instances must exceed that of negatives
        // (a constant predictor scores them identically).
        let refs: Vec<&Instance> = test.iter().collect();
        let preds = mf.scores(&refs);
        let mut pos = (0.0, 0usize);
        let mut neg = (0.0, 0usize);
        for (p, i) in preds.iter().zip(&test) {
            if i.label > 0.0 {
                pos = (pos.0 + p, pos.1 + 1);
            } else {
                neg = (neg.0 + p, neg.1 + 1);
            }
        }
        let (pos_mean, neg_mean) = (pos.0 / pos.1 as f64, neg.0 / neg.1 as f64);
        assert!(pos_mean > neg_mean, "pos mean {pos_mean} vs neg mean {neg_mean}");
    }

    #[test]
    fn pmf_trains_and_scores_finitely() {
        let (codec, train, test) = tiny_split();
        let mut pmf = Pmf::new(codec, MfConfig { epochs: 15, ..MfConfig::default() });
        let losses = pmf.fit(&train);
        assert!(losses.iter().all(|l| l.is_finite()));
        let refs: Vec<&Instance> = test.iter().collect();
        assert!(pmf.scores(&refs).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let (codec, train, _) = tiny_split();
        let cfg = MfConfig { epochs: 5, ..MfConfig::default() };
        let mut a = MatrixFactorization::new(codec, cfg.clone());
        let mut b = MatrixFactorization::new(codec, cfg);
        let la = a.fit(&train);
        let lb = b.fit(&train);
        assert_eq!(la, lb);
    }
}
