//! TransFM (Pasricha & McAuley, RecSys'18), adapted from sequential to
//! general recommendation exactly as the paper does (Section 4.2):
//!
//! `ŷ(x) = w₀ + Σᵢwᵢxᵢ + Σᵢ Σ_{j>i} d(vᵢ + v'ᵢ, vⱼ) xᵢxⱼ`
//!
//! with `d` the **squared Euclidean** distance and `v'` a per-feature
//! translation vector.

use crate::graphfm::FmBase;
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use gmlfm_train::GraphModel;
use rand::rngs::StdRng;

/// TransFM hyper-parameters.
#[derive(Debug, Clone)]
pub struct TransFmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransFmConfig {
    fn default() -> Self {
        Self { k: 16, seed: 37 }
    }
}

/// Translation-based Factorization Machine.
#[derive(Debug, Clone)]
pub struct TransFm {
    params: ParamSet,
    base: FmBase,
    /// Translation table `V' ∈ R^{n×k}`.
    v_trans: ParamId,
}

impl TransFm {
    /// Creates an untrained TransFM over `n_features` one-hot features.
    pub fn new(n_features: usize, cfg: &TransFmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, n_features, cfg.k, &mut rng);
        let v_trans = params.add("v_trans", normal(&mut rng, n_features, cfg.k, 0.0, 0.01));
        Self { params, base, v_trans }
    }

    /// Borrow of the embedding table `V` (t-SNE case study).
    pub fn factors(&self) -> &gmlfm_tensor::Matrix {
        self.params.get(self.base.v)
    }

    /// Global bias `w₀` (freeze path).
    pub fn bias(&self) -> f64 {
        self.params.get(self.base.w0)[(0, 0)]
    }

    /// Borrow of the first-order weights `w ∈ R^{n×1}` (freeze path).
    pub fn linear_weights(&self) -> &gmlfm_tensor::Matrix {
        self.params.get(self.base.w)
    }

    /// Borrow of the translation table `V' ∈ R^{n×k}` (freeze path).
    pub fn translations(&self) -> &gmlfm_tensor::Matrix {
        self.params.get(self.v_trans)
    }
}

impl GraphModel for TransFm {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        _training: bool,
        _rng: &mut StdRng,
    ) -> Var {
        let cols = FmBase::columns(batch);
        let linear = self.base.linear(g, params, &cols);
        let embeds = self.base.field_embeddings(g, params, &cols);
        let vt = g.param(params, self.v_trans);
        let translations: Vec<Var> = cols.iter().map(|col| g.gather_rows(vt, col)).collect();

        let m = embeds.len();
        let mut acc: Option<Var> = None;
        for i in 0..m {
            // v_i + v'_i is shared across all j for this i.
            let vi_t = g.add(embeds[i], translations[i]);
            for &embed_j in embeds.iter().skip(i + 1) {
                let diff = g.sub(vi_t, embed_j);
                let sq = g.square(diff);
                let dist = g.sum_rows(sq); // B x 1 squared Euclidean
                acc = Some(match acc {
                    Some(a) => g.add(a, dist),
                    None => dist,
                });
            }
        }
        let pair = acc.expect("at least two fields");
        g.add(linear, pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};

    #[test]
    fn transfm_matches_hand_computed_distance_sum() {
        let model = TransFm::new(9, &TransFmConfig { k: 3, seed: 2 });
        let inst = Instance::new(vec![0, 4, 8], 1.0);
        let pred = model.score_one(&inst);
        let v = model.params.get(model.base.v);
        let vt = model.params.get(model.v_trans);
        let rows = [0usize, 4, 8];
        let mut expected = 0.0; // w0 and w start at zero
        for a in 0..3 {
            for b in a + 1..3 {
                for d in 0..3 {
                    let diff = v[(rows[a], d)] + vt[(rows[a], d)] - v[(rows[b], d)];
                    expected += diff * diff;
                }
            }
        }
        assert!((pred - expected).abs() < 1e-10, "{pred} vs {expected}");
    }

    #[test]
    fn transfm_trains_and_reduces_loss() {
        let d = generate(&DatasetSpec::AmazonAuto.config(81).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 15);
        let mut model = TransFm::new(d.schema.total_dim(), &TransFmConfig::default());
        let cfg = TrainConfig { epochs: 8, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &s.train, Some(&s.val), &cfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.9),
            "losses {:?}",
            report.train_losses
        );
    }

    #[test]
    fn distances_without_translation_are_symmetric_contributions() {
        // With v' = 0 the pairwise term is a plain squared Euclidean
        // distance, which is non-negative.
        let mut model = TransFm::new(9, &TransFmConfig { k: 3, seed: 4 });
        model.params.get_mut(model.v_trans).fill_zero();
        let inst = Instance::new(vec![0, 4, 8], 1.0);
        let pred = model.score_one(&inst);
        assert!(pred >= 0.0, "squared distances must be non-negative, got {pred}");
    }
}
