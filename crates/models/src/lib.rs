//! # gmlfm-models
//!
//! Every baseline the paper compares against (Section 4.2), implemented
//! from scratch:
//!
//! | Model | Task(s) | Module | Training path |
//! |---|---|---|---|
//! | MF | rating | [`mf`] | hand-derived SGD |
//! | PMF | rating | [`mf`] | hand-derived SGD + Gaussian priors |
//! | BPR-MF | top-n | [`bpr`] | hand-derived pairwise SGD |
//! | NCF (NeuMF) | top-n | [`ncf`] | autograd |
//! | NGCF | top-n | [`ngcf`] | hand-derived BPR through linear propagation |
//! | FM (LibFM) | both | [`fm`] | hand-derived SGD, O(k·m) per instance |
//! | NFM | both | [`nfm`] | autograd |
//! | AFM | both | [`afm`] | autograd |
//! | DeepFM | both | [`deepfm`] | autograd |
//! | xDeepFM (CIN) | both | [`xdeepfm`] | autograd |
//! | TransFM | both | [`transfm`] | autograd |
//! | MAMO-lite | cold-start | [`mamo`] | Reptile-style meta-learning |
//!
//! All FM-family models consume the field-major [`gmlfm_data::Instance`]
//! encoding; MF-family models additionally decode `(user, item)` pairs via
//! [`common::PairCodec`].
//!
//! ### Substitutions (documented per DESIGN.md)
//!
//! * **NGCF** uses the simplified linear propagation of LightGCN
//!   (He et al., SIGIR'20): the per-layer `W₁/W₂` feature transforms are
//!   dropped, which LightGCN showed to match or improve the original NGCF.
//!   Backpropagation through the propagation is exact (it is linear).
//! * **MAMO** is implemented as *MAMO-lite*: a Reptile-style meta-learner
//!   with an attribute-conditioned user-embedding initialiser (the paper's
//!   "personalised initialisation" memory) and per-user local adaptation,
//!   rather than the full dual-memory architecture.

pub mod afm;
pub mod bpr;
pub mod common;
pub mod deepfm;
pub mod fm;
pub mod graphfm;
pub mod mamo;
pub mod mf;
pub mod ncf;
pub mod nfm;
pub mod ngcf;
pub mod transfm;
pub mod xdeepfm;

pub use afm::Afm;
pub use bpr::BprMf;
pub use common::{PairCodec, Scorer};
pub use deepfm::DeepFm;
pub use fm::FactorizationMachine;
pub use mamo::MamoLite;
pub use mf::{MatrixFactorization, Pmf};
pub use ncf::Ncf;
pub use nfm::Nfm;
pub use ngcf::Ngcf;
pub use transfm::TransFm;
pub use xdeepfm::XDeepFm;
