//! Shared model plumbing: the scoring interface used by evaluation, and
//! the user/item pair codec for MF-family models.

use gmlfm_data::{Instance, Schema};

// The scoring interface lives in `gmlfm-train` (next to `GraphModel`, which
// gets a blanket impl); re-exported here so model users find it alongside
// the models.
pub use gmlfm_train::Scorer;

/// Decodes `(user, item)` pairs from instances.
///
/// By construction (see `gmlfm_data::Dataset::feats`) the user field is
/// always field 0 and the item field is field 1 under any mask that keeps
/// the base fields, so MF-family models — which ignore side attributes —
/// can recover ids from the first two global indices.
#[derive(Debug, Clone, Copy)]
pub struct PairCodec {
    item_offset: usize,
    n_users: usize,
    n_items: usize,
}

impl PairCodec {
    /// Builds the codec from a schema (field 0 = user, field 1 = item).
    pub fn from_schema(schema: &Schema) -> Self {
        Self {
            item_offset: schema.offset(1),
            n_users: schema.fields()[0].cardinality,
            n_items: schema.fields()[1].cardinality,
        }
    }

    /// Builds the codec from raw sizes (user ids `0..n_users` are followed
    /// immediately by item ids).
    pub fn from_sizes(n_users: usize, n_items: usize) -> Self {
        Self { item_offset: n_users, n_users, n_items }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Extracts `(user, item)` from an instance.
    ///
    /// # Panics
    /// Panics when the indices are outside the user/item ranges, which
    /// means the instance was built under a mask without base fields.
    pub fn decode(&self, instance: &Instance) -> (usize, usize) {
        let user = instance.feats[0] as usize;
        let item_global = instance.feats[1] as usize;
        assert!(user < self.n_users, "PairCodec: user index {user} out of range");
        assert!(
            (self.item_offset..self.item_offset + self.n_items).contains(&item_global),
            "PairCodec: item index {item_global} out of range"
        );
        (user, item_global - self.item_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::FieldKind;

    #[test]
    fn codec_decodes_user_item() {
        let schema = Schema::from_specs(&[
            ("user", 10, FieldKind::User),
            ("item", 20, FieldKind::Item),
            ("cat", 3, FieldKind::Category),
        ]);
        let codec = PairCodec::from_schema(&schema);
        let inst = Instance::new(vec![4, 10 + 13, 31], 1.0);
        assert_eq!(codec.decode(&inst), (4, 13));
        assert_eq!(codec.n_users(), 10);
        assert_eq!(codec.n_items(), 20);
    }

    #[test]
    #[should_panic(expected = "PairCodec")]
    fn codec_rejects_masked_out_base_fields() {
        let codec = PairCodec::from_sizes(5, 5);
        // Feature 12 is outside the user+item range entirely.
        let inst = Instance::new(vec![12, 3], 1.0);
        let _ = codec.decode(&inst);
    }
}
