//! Fault-tolerant TCP serving of the gmlfm online protocol.
//!
//! This crate puts the in-process [`gmlfm_service::ModelServer`] behind
//! a real network boundary without giving up its robustness contract:
//! every failure a hostile or unlucky client can produce — truncated,
//! oversized or garbage frames, byte-at-a-time slow-loris writes,
//! connection storms, a hot swap or shutdown racing an in-flight
//! request — degrades into a **typed error or a clean close**, never a
//! panic, a hung thread, or a reply mixing model generations.
//!
//! The layers, bottom-up:
//!
//! * [`frame`] — length-prefixed framing with a size cap enforced
//!   before allocation and deadline-driven socket I/O.
//! * [`wire`] — the JSON wire format for the typed Score/TopN/Batch
//!   protocol; total decoding into [`wire::WireError`].
//! * [`server`] — threaded accept loop, connection budget with typed
//!   `overloaded` shedding, per-connection deadlines, graceful drain.
//! * [`client`] — blocking client with connect/request timeouts and
//!   jittered exponential-backoff retries (safe: every request is an
//!   idempotent read).
//! * [`loadgen`] — closed-loop load generator behind `BENCH_net.json`.
//!
//! See the README's "Network serving" section for the wire grammar and
//! the failure-mode table.

pub mod client;
pub mod frame;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, ClientError, NetClient};
pub use frame::{FrameError, DEFAULT_MAX_FRAME_BYTES};
pub use loadgen::{run_closed_loop, LoadStats};
pub use server::{DrainReport, NetServer, ServerConfig};
pub use wire::{NetError, NetReply, NetRequest, NetResponse};
