//! The threaded TCP server: accept loop, connection budget, deadlines,
//! and graceful drain over a shared [`ModelServer`].
//!
//! ## Lifecycle
//!
//! [`NetServer::bind`] spawns one accept thread; every accepted
//! connection gets its own handler thread running a strict
//! request-reply loop (one frame in, one frame out). Admission is
//! guarded by a **connection budget**: a connection over the budget
//! receives a typed `overloaded` reply and a clean close — never a
//! silent drop — without ever occupying a serving slot.
//!
//! [`NetServer::shutdown`] stops accepting, then **drains**: handler
//! threads keep serving any request whose frame has started arriving
//! (the shutdown flag is only honoured *between* frames — see
//! [`crate::frame::read_frame_deadline`]), answer it against the
//! snapshot generation pinned by the underlying [`ModelServer`] call,
//! and exit at the next idle poll. Because every `score`/`top_n`/
//! `batch` call pins exactly one snapshot, a hot swap racing a drain
//! can never mix generations inside one reply — the drain contract is
//! inherited from the in-process server, not re-implemented here.
//!
//! ## Panic containment
//!
//! The connection loop itself is panic-free (enforced by the
//! `gmlfm-analyze` L2 lint over this file), but a handler thread could
//! still die to a bug below it; the drain counts such deaths in
//! [`DrainReport::worker_panics`] instead of hanging or hiding them.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gmlfm_service::{FeedSink, ModelServer};

use crate::frame::{
    read_frame_deadline, write_frame_deadline, Deadlines, FrameError, DEFAULT_MAX_FRAME_BYTES,
};
use crate::wire::{self, code, NetReply, NetRequest, NetResponse};

/// Tuning knobs of the network server. The defaults suit interactive
/// serving; tests shrink the timeouts to keep fault injection fast.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections served concurrently; arrivals beyond this receive a
    /// typed `overloaded` reply and a clean close.
    pub max_connections: usize,
    /// Cap on a frame's payload size, enforced from the header alone.
    pub max_frame_bytes: usize,
    /// How long a connection may idle between requests before it is
    /// closed.
    pub idle_timeout: Duration,
    /// How long a request frame may take from its first byte to its
    /// last — the slow-loris reaper.
    pub frame_timeout: Duration,
    /// How long a reply frame may take to drain to the peer.
    pub write_timeout: Duration,
    /// Poll quantum for deadline and shutdown checks (clamped ≥ 1 ms).
    pub poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            poll: Duration::from_millis(5),
        }
    }
}

impl ServerConfig {
    fn deadlines(&self) -> Deadlines {
        Deadlines { idle: self.idle_timeout, frame: self.frame_timeout, poll: self.poll }
    }
}

/// What a completed drain observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests answered over the server's lifetime (including typed
    /// error replies).
    pub served: u64,
    /// Connections shed with an `overloaded` reply.
    pub shed: u64,
    /// Handler threads joined during shutdown.
    pub connections_drained: usize,
    /// Handler threads that died to a panic instead of exiting cleanly
    /// (always 0 unless a layer below the connection loop has a bug).
    pub worker_panics: usize,
}

struct Inner {
    model: Arc<ModelServer>,
    /// Ingest endpoint for `feed` requests; servers bound without one
    /// answer them with the typed `feed_unavailable` code.
    feed: Option<Arc<dyn FeedSink>>,
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    shed: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Decrements the active-connection counter when a handler exits, on
/// every path out of the loop — including an unwinding one.
struct ConnSlot<'a>(&'a Inner);

impl Drop for ConnSlot<'_> {
    fn drop(&mut self) {
        // ORDERING: Relaxed — the counter only gates admission; no data
        // is published through it, and a momentarily stale value merely
        // sheds (or admits) one connection near the budget boundary.
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A running network server. Dropping it without calling
/// [`NetServer::shutdown`] still stops and joins everything, discarding
/// the report.
pub struct NetServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections served against `model`. `feed` requests
    /// receive the typed `feed_unavailable` reply; use
    /// [`NetServer::bind_with_feed`] to serve an online ingest loop.
    pub fn bind(model: Arc<ModelServer>, addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        Self::bind_inner(model, None, addr, config)
    }

    /// [`NetServer::bind`] plus an ingest sink answering wire `feed`
    /// requests — the transport half of the online learning loop. The
    /// sink validates, folds exclusions and enqueues; its typed errors
    /// (including the retryable `backpressure`) travel as ordinary
    /// error envelopes.
    pub fn bind_with_feed(
        model: Arc<ModelServer>,
        feed: Arc<dyn FeedSink>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::bind_inner(model, Some(feed), addr, config)
    }

    fn bind_inner(
        model: Arc<ModelServer>,
        feed: Option<Arc<dyn FeedSink>>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            model,
            feed,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("gmlfm-net-accept".into())
            .spawn(move || accept_loop(&accept_inner, &listener))?;
        Ok(Self { inner, addr: local, accept: Some(accept) })
    }

    /// The bound address (the ephemeral port, when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Generation of the model snapshot currently being served.
    pub fn generation(&self) -> u64 {
        self.inner.model.generation()
    }

    /// The shared in-process server, for hot-swapping models while the
    /// network server runs.
    pub fn model(&self) -> &Arc<ModelServer> {
        &self.inner.model
    }

    /// Stops accepting, drains in-flight requests, joins every worker,
    /// and reports what happened. Idempotent with [`Drop`]: calling
    /// this consumes the server.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop_and_join()
    }

    fn stop_and_join(&mut self) -> DrainReport {
        // ORDERING: Relaxed — the flag is a pure control signal polled
        // in a loop by every worker; a stale read costs one extra poll
        // quantum and is self-correcting. The joins below provide the
        // happens-before edges for the counters read afterwards.
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop: a throw-away connection makes
        // `accept` return so it can observe the flag. If the connect
        // fails the listener is already gone and accept has errored out
        // on its own.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let workers = {
            let mut guard = self.inner.workers.lock().unwrap_or_else(|poison| poison.into_inner());
            std::mem::take(&mut *guard)
        };
        let connections_drained = workers.len();
        let worker_panics = workers.into_iter().map(|w| w.join()).filter(Result::is_err).count();
        DrainReport {
            // ORDERING: Relaxed — every writer thread was joined above,
            // which synchronises-with this thread; the loads see final
            // values.
            served: self.inner.served.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed), // ORDERING: Relaxed — same joins as above.
            connections_drained,
            worker_panics,
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _ = self.stop_and_join();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    loop {
        let conn = listener.accept();
        // ORDERING: Relaxed — see `stop_and_join`: the wake-up connect
        // guarantees another pass through this check, so a stale read
        // at worst handles one extra connection before stopping.
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match conn {
            Ok((stream, _peer)) => {
                let worker_inner = Arc::clone(inner);
                let spawned = std::thread::Builder::new()
                    .name("gmlfm-net-conn".into())
                    .spawn(move || handle_connection(&worker_inner, stream));
                match spawned {
                    Ok(handle) => {
                        let mut guard = inner.workers.lock().unwrap_or_else(|poison| poison.into_inner());
                        guard.push(handle);
                    }
                    // Thread exhaustion: shed at the OS boundary; the
                    // stream closes and the client sees a clean close.
                    Err(_) => {
                        // ORDERING: Relaxed — statistics counter only.
                        inner.shed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Transient accept failures (EMFILE under a storm, aborted
            // handshakes): back off one poll quantum and keep accepting.
            Err(_) => std::thread::sleep(inner.config.poll.max(Duration::from_millis(1))),
        }
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    // ORDERING: Relaxed — admission gate only (see `ConnSlot::drop`);
    // no data is transferred through this counter.
    if inner.active.fetch_add(1, Ordering::Relaxed) >= inner.config.max_connections {
        // Over budget: typed reply, not a silent drop. The slot guard
        // below is never constructed, so undo the increment directly.
        // ORDERING: Relaxed — same admission-gate counter.
        inner.active.fetch_sub(1, Ordering::Relaxed);
        // ORDERING: Relaxed — statistics counter only.
        inner.shed.fetch_add(1, Ordering::Relaxed);
        let msg = format!("connection budget ({}) exhausted; retry later", inner.config.max_connections);
        let payload = wire::encode_error(code::OVERLOADED, &msg);
        let _ = write_frame_deadline(
            &mut stream,
            payload.as_bytes(),
            inner.config.max_frame_bytes,
            inner.config.write_timeout,
            inner.config.poll,
        );
        return;
    }
    let _slot = ConnSlot(inner);
    let deadlines = inner.config.deadlines();

    loop {
        let payload =
            match read_frame_deadline(&mut stream, inner.config.max_frame_bytes, &deadlines, &inner.shutdown)
            {
                Ok(payload) => payload,
                Err(FrameError::Oversized { len, max }) => {
                    // The oversized payload was never read, so the
                    // stream cannot be re-synchronised: reply typed,
                    // then close.
                    let msg = format!("declared frame length {len} exceeds the {max}-byte cap");
                    let _ = reply(inner, &mut stream, &wire::encode_error(code::OVERSIZED_FRAME, &msg));
                    return;
                }
                // Clean close, idle/slow-loris reaping, truncation,
                // socket errors, shutdown while idle: close. There is
                // no request to answer, and writing an unsolicited
                // frame would desynchronise the peer's request-reply
                // pairing.
                Err(_) => return,
            };

        let reply_payload = match wire::decode_request(&payload) {
            // Malformed JSON inside a well-formed frame: the stream is
            // still frame-synchronised, so answer typed and keep the
            // connection.
            Err(e) => wire::encode_error(code::BAD_REQUEST, &e.message),
            Ok(req) => answer(&inner.model, inner.feed.as_deref(), &req),
        };
        // ORDERING: Relaxed — statistics counter only; final values
        // are read after the drain joins this thread.
        inner.served.fetch_add(1, Ordering::Relaxed);
        if reply(inner, &mut stream, &reply_payload).is_err() {
            return;
        }
    }
}

fn reply(inner: &Inner, stream: &mut TcpStream, payload: &str) -> Result<(), FrameError> {
    write_frame_deadline(
        stream,
        payload.as_bytes(),
        inner.config.max_frame_bytes,
        inner.config.write_timeout,
        inner.config.poll,
    )
}

/// Answers one decoded request against the shared model. Each arm makes
/// exactly one `ModelServer` call, which pins exactly one snapshot —
/// the generation stamped on the reply is the generation every number
/// in it was computed from. `feed` requests route to the bound sink
/// instead (which validates against the same server's current snapshot).
fn answer(model: &ModelServer, feed: Option<&dyn FeedSink>, req: &NetRequest) -> String {
    match req {
        NetRequest::Score(score) => match model.score(score) {
            Ok(resp) => wire::encode_response(&NetResponse {
                generation: resp.generation,
                reply: NetReply::Score(resp.value),
            }),
            Err(e) => wire::encode_error(e.code(), &e.to_string()),
        },
        NetRequest::TopN(topn) => match model.top_n(topn) {
            Ok(resp) => wire::encode_response(&NetResponse {
                generation: resp.generation,
                reply: NetReply::TopN(resp.value),
            }),
            Err(e) => wire::encode_error(e.code(), &e.to_string()),
        },
        NetRequest::Batch(batch) => {
            let resp = model.batch(batch);
            let slots = resp
                .value
                .iter()
                .map(|slot| match slot {
                    Ok(r) => Ok(NetReply::from_reply(r)),
                    Err(e) => Err(wire::NetError::from_request_error(e)),
                })
                .collect();
            wire::encode_response(&NetResponse { generation: resp.generation, reply: NetReply::Batch(slots) })
        }
        NetRequest::Feed(event) => match feed {
            None => {
                wire::encode_error(code::FEED_UNAVAILABLE, "this server has no online ingest loop behind it")
            }
            Some(sink) => match sink.feed(event) {
                Ok(resp) => wire::encode_response(&NetResponse {
                    generation: resp.generation,
                    reply: NetReply::Feed(resp.value),
                }),
                Err(e) => wire::encode_error(e.code(), &e.to_string()),
            },
        },
    }
}
