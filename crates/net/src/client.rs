//! A thin blocking client for the gmlfm-net protocol: connect/request
//! timeouts, typed errors, and jittered exponential-backoff retries.
//!
//! ## Retry policy
//!
//! Every request in the protocol is an **idempotent read** — scoring and
//! ranking mutate nothing — so retrying after an ambiguous failure (a
//! timeout whose request may or may not have been processed) is always
//! safe. The client therefore retries on connect failures, transport
//! errors, timeouts, and the server's `overloaded` / `shutting_down`
//! codes, reconnecting each time (a failed exchange leaves the old
//! stream's framing in an unknown state). Request-validation errors
//! (`unknown_user`, …) are deterministic and are **not** retried.
//!
//! Backoff is exponential with **full jitter**: attempt `k` sleeps
//! `min(max_backoff, base · 2^(k-1)) · u` with `u` uniform in
//! `[0.5, 1)`, from a deterministic xorshift stream seeded per client —
//! reproducible in tests, yet de-synchronised across clients so a
//! recovering server is not hit by a retry stampede.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME_BYTES};
use crate::wire::{self, code, NetError, NetRequest, NetResponse};

/// Tuning knobs of the client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Whole-exchange budget per attempt: the socket read/write timeout
    /// while sending the request and awaiting the reply.
    pub request_timeout: Duration,
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry 1 (doubles per retry).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Cap on reply frame size.
    pub max_frame_bytes: usize,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            jitter_seed: 0x6d6c_666d,
        }
    }
}

/// Why a request ultimately failed, after any retries.
#[derive(Debug)]
pub enum ClientError {
    /// No connection could be established within the budget.
    Connect(std::io::Error),
    /// The exchange failed at the framing/socket layer.
    Transport(FrameError),
    /// The reply was not a well-formed envelope.
    Protocol(wire::WireError),
    /// The server answered with a typed error (`unknown_user`,
    /// `overloaded` after retries were exhausted, …).
    Server(NetError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Transport(e) => write!(f, "transport failed: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "server error {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether retrying could help: transport-level failures and the
    /// server's transient codes — `overloaded`, `shutting_down`, and the
    /// online loop's `backpressure` (the interaction log drains at the
    /// next retrain; retried feeds carrying an id are deduplicated
    /// server-side, so the retry is safe even after an ambiguous
    /// failure). Validation errors are deterministic and final.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Connect(_) | ClientError::Transport(_) => true,
            ClientError::Protocol(_) => false,
            ClientError::Server(e) => {
                e.code == code::OVERLOADED || e.code == code::SHUTTING_DOWN || e.code == "backpressure"
            }
        }
    }
}

/// xorshift64*: tiny deterministic jitter source (not for cryptography).
fn next_jitter(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    // Upper 53 bits → uniform in [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A blocking protocol client. One request is in flight at a time; a
/// fresh connection is established per request attempt (the protocol is
/// cheap to connect and a failed exchange leaves framing unknown).
pub struct NetClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    jitter: u64,
}

impl NetClient {
    /// A client for the server at `addr` with default tuning.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit tuning.
    pub fn with_config(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address resolved"));
        }
        let jitter = config.jitter_seed | 1; // xorshift state must be non-zero
        Ok(Self { addrs, config, jitter })
    }

    /// Sends one request, retrying retryable failures up to
    /// `max_attempts` with jittered exponential backoff. `Ok` carries
    /// the generation-stamped response; `Err` the final typed failure.
    pub fn request(&mut self, req: &NetRequest) -> Result<NetResponse, ClientError> {
        let payload = wire::encode_request(req);
        let mut last = None;
        for attempt in 1..=self.config.max_attempts.max(1) {
            if attempt > 1 {
                std::thread::sleep(self.backoff(attempt - 1));
            }
            match self.attempt(&payload) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        // `max_attempts` is clamped ≥ 1, so at least one attempt ran
        // and `last` is populated on this path.
        Err(last.unwrap_or_else(|| ClientError::Connect(std::io::Error::other("no attempt ran"))))
    }

    /// One exchange over a fresh connection.
    fn attempt(&self, payload: &str) -> Result<NetResponse, ClientError> {
        let mut stream = self.open()?;
        write_frame(&mut stream, payload.as_bytes(), self.config.max_frame_bytes)
            .map_err(ClientError::Transport)?;
        let reply = read_frame(&mut stream, self.config.max_frame_bytes).map_err(ClientError::Transport)?;
        match wire::decode_response(&reply).map_err(ClientError::Protocol)? {
            Ok(resp) => Ok(resp),
            Err(server) => Err(ClientError::Server(server)),
        }
    }

    fn open(&self) -> Result<TcpStream, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(self.config.request_timeout))
                        .map_err(ClientError::Connect)?;
                    stream
                        .set_write_timeout(Some(self.config.request_timeout))
                        .map_err(ClientError::Connect)?;
                    stream.set_nodelay(true).map_err(ClientError::Connect)?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Connect(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address to connect to")
        })))
    }

    /// Backoff before retry `k` (1-based): exponential with full jitter
    /// in `[0.5, 1) ·` the capped exponential term.
    fn backoff(&mut self, k: u32) -> Duration {
        let exp = self
            .config
            .base_backoff
            .saturating_mul(1u32.checked_shl(k - 1).unwrap_or(u32::MAX));
        let capped = exp.min(self.config.max_backoff);
        let u = 0.5 + 0.5 * next_jitter(&mut self.jitter);
        capped.mul_f64(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..1000 {
            let x = next_jitter(&mut a);
            assert_eq!(x, next_jitter(&mut b));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn backoff_doubles_under_the_cap_with_jitter() {
        let config = ClientConfig {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(350),
            ..ClientConfig::default()
        };
        let mut client = NetClient::with_config("127.0.0.1:9", config).unwrap();
        let b1 = client.backoff(1);
        let b2 = client.backoff(2);
        let b3 = client.backoff(3);
        assert!(b1 >= Duration::from_millis(50) && b1 < Duration::from_millis(100), "{b1:?}");
        assert!(b2 >= Duration::from_millis(100) && b2 < Duration::from_millis(200), "{b2:?}");
        // 400 ms capped at 350 ms before jitter.
        assert!(b3 >= Duration::from_millis(175) && b3 < Duration::from_millis(350), "{b3:?}");
    }

    #[test]
    fn retryability_matches_the_policy() {
        assert!(ClientError::Connect(std::io::Error::other("x")).is_retryable());
        assert!(ClientError::Transport(FrameError::Closed).is_retryable());
        assert!(ClientError::Server(NetError::new(code::OVERLOADED, "")).is_retryable());
        assert!(ClientError::Server(NetError::new(code::SHUTTING_DOWN, "")).is_retryable());
        // The online loop's backpressure is transient: the log drains at
        // the next retrain, and id-carrying feeds deduplicate on retry.
        assert!(ClientError::Server(NetError::new("backpressure", "")).is_retryable());
        // A server without a feed sink will never grow one mid-flight.
        assert!(!ClientError::Server(NetError::new(code::FEED_UNAVAILABLE, "")).is_retryable());
        assert!(!ClientError::Server(NetError::new("unknown_user", "")).is_retryable());
        assert!(!ClientError::Protocol(wire::WireError { message: "x".into() }).is_retryable());
    }
}
