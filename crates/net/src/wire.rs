//! The JSON wire format: typed protocol values ⇄ frame payloads.
//!
//! Every frame payload is one JSON object. Requests carry an `"op"`
//! discriminant (`"score"` / `"topn"` / `"batch"`); replies are an
//! envelope with `"ok"` — `true` plus a generation-stamped payload, or
//! `false` plus a stable machine-readable `"code"` and a human `"message"`.
//! The full grammar is documented in the README's "Network serving"
//! section; the shapes here are the reference implementation.
//!
//! Decoding is **total**: any byte payload — non-UTF-8, malformed JSON,
//! wrong shapes, absurd numbers — yields a typed [`WireError`], never a
//! panic (this module is in the `gmlfm-analyze` L2 panic-freedom scope,
//! and `tests/frame_proptest.rs` drives arbitrary bytes through it).
//!
//! One deliberate lossy corner: [`ScoreRequest::Instance`] encodes as a
//! `"feats"` request, because scoring ignores the instance label — the
//! two are indistinguishable to the server, and the wire keeps the
//! smaller shape. And one precision bound: generation stamps ride a
//! JSON number, exact up to 2^53 — generations increment by 1 per
//! hot swap, so the bound is unreachable in any real deployment.

use gmlfm_par::Parallelism;
use gmlfm_serve::{Precision, RetrievalStrategy};
use gmlfm_service::{
    BatchRequest, FeedAck, Interaction, Reply, Request, RequestError, ScoreRequest, TopNRequest,
};
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};

/// Stable error codes owned by the transport itself (request-validation
/// codes come from [`RequestError::code`]).
pub mod code {
    /// The payload was not a well-formed request object.
    pub const BAD_REQUEST: &str = "bad_request";
    /// A frame declared a length above the server's cap.
    pub const OVERSIZED_FRAME: &str = "oversized_frame";
    /// The connection budget is exhausted; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining; retry against another instance.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// A `feed` request reached a server bound without a feed sink
    /// (no online loop behind it). Not retryable against this instance.
    pub const FEED_UNAVAILABLE: &str = "feed_unavailable";
}

/// A payload that could not be decoded into a protocol value.
#[derive(Debug)]
pub struct WireError {
    /// What was wrong with the payload.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire payload: {}", self.message)
    }
}

impl std::error::Error for WireError {}

impl From<json::Error> for WireError {
    fn from(e: json::Error) -> Self {
        WireError::new(e.to_string())
    }
}

/// An error reply as it travels on the wire: a stable `code` (from
/// [`RequestError::code`] or [`code`]) plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetError {
    /// Machine-readable error code.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl NetError {
    /// An error reply with the given code and message.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self { code: code.into(), message: message.into() }
    }

    /// The wire form of a request-validation error.
    pub fn from_request_error(e: &RequestError) -> Self {
        Self::new(e.code(), e.to_string())
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for NetError {}

/// One request as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum NetRequest {
    /// A single scoring request.
    Score(ScoreRequest),
    /// A single ranking request.
    TopN(TopNRequest),
    /// Many requests answered against one snapshot.
    Batch(BatchRequest),
    /// One streamed interaction for the server's online loop. Carrying
    /// an [`Interaction::id`] makes client retries idempotent.
    Feed(Interaction),
}

/// The successful payload of a [`NetResponse`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetReply {
    /// Payload of a score request.
    Score(f64),
    /// Payload of a top-n request: `(item, score)` pairs, best first.
    TopN(Vec<(u32, f64)>),
    /// Payload of a batch: one slot per sub-request, each independently
    /// a reply or a typed error (slots are never `Batch` themselves).
    Batch(Vec<Result<NetReply, NetError>>),
    /// Acknowledgement of a feed request.
    Feed(FeedAck),
}

impl NetReply {
    /// The wire form of an in-process [`Reply`].
    pub fn from_reply(reply: &Reply) -> Self {
        match reply {
            Reply::Score(x) => NetReply::Score(*x),
            Reply::TopN(items) => NetReply::TopN(items.clone()),
        }
    }
}

/// A successful reply stamped with the generation of the snapshot that
/// produced it — the same contract as [`gmlfm_service::Response`],
/// carried across the network boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct NetResponse {
    /// Generation of the snapshot that answered this request.
    pub generation: u64,
    /// The reply payload.
    pub reply: NetReply,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_score_fields(req: &ScoreRequest, out: &mut String) {
    match req {
        // An instance scores identically to its bare feature list (the
        // label is ignored), so both share the "feats" wire shape.
        ScoreRequest::Instance(inst) => {
            out.push_str("\"mode\":\"feats\",\"feats\":");
            inst.feats.serialize_json(out);
        }
        ScoreRequest::Feats(feats) => {
            out.push_str("\"mode\":\"feats\",\"feats\":");
            feats.serialize_json(out);
        }
        ScoreRequest::Pair { user, item } => {
            out.push_str("\"mode\":\"pair\",\"user\":");
            user.serialize_json(out);
            out.push_str(",\"item\":");
            item.serialize_json(out);
        }
        ScoreRequest::Cold { item, fields } => {
            out.push_str("\"mode\":\"cold\",\"item\":");
            item.serialize_json(out);
            out.push_str(",\"fields\":");
            fields.serialize_json(out);
        }
    }
}

fn push_strategy(strategy: &Option<RetrievalStrategy>, out: &mut String) {
    match strategy {
        None => out.push_str("null"),
        Some(RetrievalStrategy::Exact) => out.push_str("{\"kind\":\"exact\"}"),
        Some(RetrievalStrategy::Ivf { nprobe }) => {
            out.push_str("{\"kind\":\"ivf\",\"nprobe\":");
            nprobe.serialize_json(out);
            out.push('}');
        }
    }
}

fn push_topn_fields(req: &TopNRequest, out: &mut String) {
    out.push_str("\"user\":");
    req.user.serialize_json(out);
    out.push_str(",\"n\":");
    req.n.serialize_json(out);
    out.push_str(",\"candidates\":");
    req.candidates.serialize_json(out);
    out.push_str(",\"exclude\":");
    req.exclude.serialize_json(out);
    out.push_str(",\"exclude_seen\":");
    req.exclude_seen.serialize_json(out);
    out.push_str(",\"par\":");
    req.par.map(|p| p.get()).serialize_json(out);
    out.push_str(",\"strategy\":");
    push_strategy(&req.strategy, out);
    out.push_str(",\"precision\":");
    match req.precision {
        None => out.push_str("null"),
        // Precision names contain no JSON-escapable characters.
        Some(p) => {
            out.push('"');
            out.push_str(p.name());
            out.push('"');
        }
    }
}

fn push_request(req: &Request, out: &mut String) {
    match req {
        Request::Score(s) => {
            out.push_str("{\"op\":\"score\",");
            push_score_fields(s, out);
            out.push('}');
        }
        Request::TopN(t) => {
            out.push_str("{\"op\":\"topn\",");
            push_topn_fields(t, out);
            out.push('}');
        }
    }
}

/// Encodes a request as a frame payload.
pub fn encode_request(req: &NetRequest) -> String {
    let mut out = String::new();
    match req {
        NetRequest::Score(s) => {
            out.push_str("{\"op\":\"score\",");
            push_score_fields(s, &mut out);
            out.push('}');
        }
        NetRequest::TopN(t) => {
            out.push_str("{\"op\":\"topn\",");
            push_topn_fields(t, &mut out);
            out.push('}');
        }
        NetRequest::Batch(b) => {
            out.push_str("{\"op\":\"batch\",\"par\":");
            b.par.map(|p| p.get()).serialize_json(&mut out);
            out.push_str(",\"requests\":[");
            for (i, sub) in b.requests.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_request(sub, &mut out);
            }
            out.push_str("]}");
        }
        NetRequest::Feed(event) => {
            out.push_str("{\"op\":\"feed\",\"user\":");
            event.user.serialize_json(&mut out);
            out.push_str(",\"item\":");
            event.item.serialize_json(&mut out);
            out.push_str(",\"rating\":");
            event.rating.serialize_json(&mut out);
            out.push_str(",\"fields\":");
            event.fields.serialize_json(&mut out);
            out.push_str(",\"id\":");
            event.id.serialize_json(&mut out);
            out.push('}');
        }
    }
    out
}

fn push_reply_fields(reply: &NetReply, out: &mut String) {
    match reply {
        NetReply::Score(x) => {
            out.push_str("\"kind\":\"score\",\"value\":");
            x.serialize_json(out);
        }
        NetReply::TopN(items) => {
            out.push_str("\"kind\":\"topn\",\"items\":");
            items.serialize_json(out);
        }
        NetReply::Batch(slots) => {
            out.push_str("\"kind\":\"batch\",\"results\":[");
            for (i, slot) in slots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match slot {
                    Ok(r) => {
                        out.push_str("{\"ok\":true,");
                        push_reply_fields(r, out);
                        out.push('}');
                    }
                    Err(e) => push_error_object(&e.code, &e.message, out),
                }
            }
            out.push(']');
        }
        NetReply::Feed(ack) => {
            out.push_str("\"kind\":\"feed\",\"accepted\":");
            ack.accepted.serialize_json(out);
            out.push_str(",\"pending\":");
            ack.pending.serialize_json(out);
        }
    }
}

fn push_error_object(code: &str, message: &str, out: &mut String) {
    out.push_str("{\"ok\":false,\"code\":");
    json::write_escaped(code, out);
    out.push_str(",\"message\":");
    json::write_escaped(message, out);
    out.push('}');
}

/// Encodes a successful reply envelope.
pub fn encode_response(resp: &NetResponse) -> String {
    let mut out = String::from("{\"ok\":true,\"generation\":");
    resp.generation.serialize_json(&mut out);
    out.push(',');
    push_reply_fields(&resp.reply, &mut out);
    out.push('}');
    out
}

/// Encodes an error reply envelope.
pub fn encode_error(code: &str, message: &str) -> String {
    let mut out = String::new();
    push_error_object(code, message, &mut out);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn parse_payload(payload: &[u8]) -> Result<Value, WireError> {
    let text =
        std::str::from_utf8(payload).map_err(|e| WireError::new(format!("payload is not UTF-8: {e}")))?;
    Ok(json::parse(text)?)
}

fn decode_score(v: &Value) -> Result<ScoreRequest, WireError> {
    let mode: String = json::field(v, "mode")?;
    match mode.as_str() {
        "feats" => Ok(ScoreRequest::Feats(json::field(v, "feats")?)),
        "pair" => Ok(ScoreRequest::Pair { user: json::field(v, "user")?, item: json::field(v, "item")? }),
        "cold" => Ok(ScoreRequest::Cold { item: json::field(v, "item")?, fields: json::field(v, "fields")? }),
        other => Err(WireError::new(format!("unknown score mode '{other}'"))),
    }
}

fn decode_strategy(v: &Value) -> Result<Option<RetrievalStrategy>, WireError> {
    let Some(s) = v.get("strategy") else { return Ok(None) };
    if s.is_null() {
        return Ok(None);
    }
    let kind: String = json::field(s, "kind")?;
    match kind.as_str() {
        "exact" => Ok(Some(RetrievalStrategy::Exact)),
        "ivf" => {
            let nprobe = match s.get("nprobe") {
                None => None,
                Some(n) => Option::<usize>::deserialize_json_helper(n)?,
            };
            Ok(Some(RetrievalStrategy::Ivf { nprobe }))
        }
        other => Err(WireError::new(format!("unknown retrieval strategy '{other}'"))),
    }
}

fn decode_precision(v: &Value) -> Result<Option<Precision>, WireError> {
    let Some(p) = v.get("precision") else { return Ok(None) };
    if p.is_null() {
        return Ok(None);
    }
    let name = String::deserialize_json(p).map_err(WireError::from)?;
    Precision::from_name(&name)
        .map(Some)
        .ok_or_else(|| WireError::new(format!("unknown precision '{name}'")))
}

/// `Option<T>` deserialisation on a borrowed member (the derive-less
/// equivalent of `json::field` for members that may be absent).
trait OptionalMember: Sized {
    fn deserialize_json_helper(v: &Value) -> Result<Self, WireError>;
}

impl<T: serde::Deserialize> OptionalMember for Option<T> {
    fn deserialize_json_helper(v: &Value) -> Result<Self, WireError> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(v).map_err(WireError::from)?))
        }
    }
}

fn decode_par(v: &Value) -> Result<Option<Parallelism>, WireError> {
    let Some(p) = v.get("par") else { return Ok(None) };
    let n = Option::<usize>::deserialize_json_helper(p)?;
    // threads(0) clamps to 1 by the Parallelism contract, so any wire
    // integer maps to a valid worker count.
    Ok(n.map(Parallelism::threads))
}

fn decode_topn(v: &Value) -> Result<TopNRequest, WireError> {
    let candidates = match v.get("candidates") {
        None => None,
        Some(c) => Option::<Vec<u32>>::deserialize_json_helper(c)?,
    };
    let exclude = match v.get("exclude") {
        None => Vec::new(),
        Some(e) => Vec::<u32>::deserialize_json(e).map_err(WireError::from)?,
    };
    let exclude_seen = match v.get("exclude_seen") {
        None => true,
        Some(b) => bool::deserialize_json(b).map_err(WireError::from)?,
    };
    Ok(TopNRequest {
        user: json::field(v, "user")?,
        n: json::field(v, "n")?,
        candidates,
        exclude,
        exclude_seen,
        par: decode_par(v)?,
        strategy: decode_strategy(v)?,
        precision: decode_precision(v)?,
    })
}

fn decode_feed(v: &Value) -> Result<Interaction, WireError> {
    let rating = match v.get("rating") {
        None => None,
        Some(r) => Option::<f64>::deserialize_json_helper(r)?,
    };
    let fields = match v.get("fields") {
        None => Vec::new(),
        Some(fs) => Vec::<(String, usize)>::deserialize_json(fs).map_err(WireError::from)?,
    };
    let id = match v.get("id") {
        None => None,
        Some(i) => Option::<u64>::deserialize_json_helper(i)?,
    };
    Ok(Interaction { user: json::field(v, "user")?, item: json::field(v, "item")?, rating, fields, id })
}

fn decode_one(v: &Value) -> Result<Request, WireError> {
    let op: String = json::field(v, "op")?;
    match op.as_str() {
        "score" => Ok(Request::Score(decode_score(v)?)),
        "topn" => Ok(Request::TopN(decode_topn(v)?)),
        "batch" => Err(WireError::new("batch requests cannot nest")),
        "feed" => Err(WireError::new("feed requests cannot ride in a batch")),
        other => Err(WireError::new(format!("unknown op '{other}'"))),
    }
}

/// Decodes a frame payload into a request. Any malformed payload is a
/// typed [`WireError`] — non-UTF-8 bytes, JSON syntax errors, missing
/// fields, unknown discriminants, numbers out of range.
pub fn decode_request(payload: &[u8]) -> Result<NetRequest, WireError> {
    let v = parse_payload(payload)?;
    let op: String = json::field(&v, "op")?;
    match op.as_str() {
        "score" => Ok(NetRequest::Score(decode_score(&v)?)),
        "topn" => Ok(NetRequest::TopN(decode_topn(&v)?)),
        "batch" => {
            let members = v
                .get("requests")
                .and_then(Value::as_array)
                .ok_or_else(|| WireError::new("batch without a 'requests' array"))?;
            let requests = members.iter().map(decode_one).collect::<Result<Vec<_>, _>>()?;
            Ok(NetRequest::Batch(BatchRequest { requests, par: decode_par(&v)? }))
        }
        "feed" => Ok(NetRequest::Feed(decode_feed(&v)?)),
        other => Err(WireError::new(format!("unknown op '{other}'"))),
    }
}

fn decode_reply_fields(v: &Value, allow_batch: bool) -> Result<NetReply, WireError> {
    let kind: String = json::field(v, "kind")?;
    match kind.as_str() {
        "score" => Ok(NetReply::Score(json::field(v, "value")?)),
        "topn" => Ok(NetReply::TopN(json::field(v, "items")?)),
        "batch" if allow_batch => {
            let members = v
                .get("results")
                .and_then(Value::as_array)
                .ok_or_else(|| WireError::new("batch reply without a 'results' array"))?;
            let slots = members
                .iter()
                .map(|m| {
                    Ok(match json::field::<bool>(m, "ok")? {
                        true => Ok(decode_reply_fields(m, false)?),
                        false => Err(decode_error_fields(m)?),
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(NetReply::Batch(slots))
        }
        "batch" => Err(WireError::new("batch replies cannot nest")),
        "feed" => Ok(NetReply::Feed(FeedAck {
            accepted: json::field(v, "accepted")?,
            pending: json::field(v, "pending")?,
        })),
        other => Err(WireError::new(format!("unknown reply kind '{other}'"))),
    }
}

fn decode_error_fields(v: &Value) -> Result<NetError, WireError> {
    Ok(NetError { code: json::field(v, "code")?, message: json::field(v, "message")? })
}

/// Decodes a reply envelope: `Ok(Ok(..))` is a successful response,
/// `Ok(Err(..))` a typed server-side error reply, `Err(..)` a payload
/// that is not a well-formed envelope at all.
pub fn decode_response(payload: &[u8]) -> Result<Result<NetResponse, NetError>, WireError> {
    let v = parse_payload(payload)?;
    match json::field::<bool>(&v, "ok")? {
        true => {
            let generation: u64 = json::field(&v, "generation")?;
            Ok(Ok(NetResponse { generation, reply: decode_reply_fields(&v, true)? }))
        }
        false => Ok(Err(decode_error_fields(&v)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            NetRequest::Score(ScoreRequest::feats(vec![0u32, 7, 99])),
            NetRequest::Score(ScoreRequest::pair(3, 14)),
            NetRequest::Score(ScoreRequest::cold(2, &[("gender", 1), ("age", 30)])),
            NetRequest::TopN(TopNRequest::new(5, 10)),
            NetRequest::TopN(
                TopNRequest::new(1, 3)
                    .candidates(vec![9, 8, 7])
                    .exclude(vec![8])
                    .include_seen()
                    .parallelism(Parallelism::threads(2))
                    .strategy(RetrievalStrategy::Ivf { nprobe: Some(4) }),
            ),
            NetRequest::TopN(TopNRequest::new(2, 5).precision(Precision::I8)),
            NetRequest::TopN(TopNRequest::new(2, 5).precision(Precision::F32)),
            NetRequest::Batch(
                BatchRequest::new(vec![
                    Request::Score(ScoreRequest::pair(0, 1)),
                    Request::TopN(TopNRequest::new(0, 2)),
                ])
                .parallelism(Parallelism::serial()),
            ),
        ];
        for req in &reqs {
            let text = encode_request(req);
            let back = decode_request(text.as_bytes()).unwrap();
            assert_eq!(&back, req, "wire text: {text}");
        }
    }

    #[test]
    fn unknown_precision_is_a_typed_error() {
        let err = decode_request(br#"{"op":"topn","user":1,"n":2,"precision":"f16"}"#)
            .expect_err("unknown precision name must not decode");
        assert!(err.message.contains("precision"), "message: {}", err.message);
        // Absent and null both mean "snapshot default".
        let absent = decode_request(br#"{"op":"topn","user":1,"n":2}"#).unwrap();
        let null = decode_request(br#"{"op":"topn","user":1,"n":2,"precision":null}"#).unwrap();
        assert_eq!(absent, null);
    }

    #[test]
    fn feed_requests_and_acks_round_trip() {
        let reqs = [
            NetRequest::Feed(Interaction::new(3, 14)),
            NetRequest::Feed(Interaction::new(0, 1).rating(-1.0).fields(&[("age", 2)]).id(42)),
        ];
        for req in &reqs {
            let text = encode_request(req);
            let back = decode_request(text.as_bytes()).unwrap();
            assert_eq!(&back, req, "wire text: {text}");
        }
        let resp =
            NetResponse { generation: 4, reply: NetReply::Feed(FeedAck { accepted: true, pending: 9 }) };
        let text = encode_response(&resp);
        assert_eq!(decode_response(text.as_bytes()).unwrap().unwrap(), resp, "wire text: {text}");
        // A duplicate ack is accepted:false, still an ok envelope.
        let dup =
            NetResponse { generation: 4, reply: NetReply::Feed(FeedAck { accepted: false, pending: 0 }) };
        assert_eq!(decode_response(encode_response(&dup).as_bytes()).unwrap().unwrap(), dup);
    }

    #[test]
    fn instance_requests_normalise_to_feats() {
        let req = NetRequest::Score(ScoreRequest::Instance(gmlfm_data::Instance::new(vec![1, 2], 1.0)));
        let back = decode_request(encode_request(&req).as_bytes()).unwrap();
        assert_eq!(back, NetRequest::Score(ScoreRequest::feats(vec![1u32, 2])));
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            NetResponse { generation: 1, reply: NetReply::Score(-2.5) },
            NetResponse { generation: 7, reply: NetReply::TopN(vec![(3, 1.5), (1, 0.25)]) },
            NetResponse {
                generation: 2,
                reply: NetReply::Batch(vec![
                    Ok(NetReply::Score(0.5)),
                    Err(NetError::new("unknown_user", "user 9 outside the catalog's 4 users")),
                    Ok(NetReply::TopN(vec![])),
                ]),
            },
        ];
        for resp in &resps {
            let text = encode_response(resp);
            let back = decode_response(text.as_bytes()).unwrap().unwrap();
            assert_eq!(&back, resp, "wire text: {text}");
        }
    }

    #[test]
    fn error_envelopes_round_trip() {
        let text = encode_error(code::OVERLOADED, "124 connections active");
        let err = decode_response(text.as_bytes()).unwrap().unwrap_err();
        assert_eq!(err, NetError::new("overloaded", "124 connections active"));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        for bad in [
            &b"\xff\xfe"[..],                                                             // not UTF-8
            b"{",                                                                         // JSON syntax
            b"[1,2,3]",                                                                   // not an object
            b"{\"op\":\"noop\"}",                                                         // unknown op
            b"{\"op\":\"score\",\"mode\":\"x\"}",                                         // unknown mode
            b"{\"op\":\"topn\",\"user\":1}",                                              // missing n
            b"{\"op\":\"topn\",\"user\":-1,\"n\":1}",                                     // u32 out of range
            b"{\"op\":\"batch\",\"requests\":[{\"op\":\"batch\",\"requests\":[]}]}",      // nesting
            b"{\"op\":\"feed\",\"user\":1}",                                              // missing item
            b"{\"op\":\"feed\",\"user\":1,\"item\":2,\"rating\":\"five\"}",               // bad rating
            b"{\"op\":\"batch\",\"requests\":[{\"op\":\"feed\",\"user\":1,\"item\":2}]}", // feed in batch
        ] {
            assert!(decode_request(bad).is_err(), "{:?} should fail", String::from_utf8_lossy(bad));
        }
        assert!(decode_response(b"{\"ok\":true}").is_err());
        assert!(decode_response(b"{\"ok\":false}").is_err());
    }
}
