//! A closed-loop load generator for the network server: each client
//! thread keeps exactly one request in flight, so measured latency is
//! service latency (not queueing behind the generator itself) and the
//! achieved rate is the sustained closed-loop throughput.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::client::{ClientConfig, NetClient};
use crate::wire::NetRequest;

/// What a closed-loop run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Client threads driving the loop.
    pub threads: usize,
    /// Successful requests completed.
    pub requests: u64,
    /// Failed requests (after client-side retries).
    pub errors: u64,
    /// Sustained rate: `requests / wall-clock seconds`.
    pub rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Drives the server at `addr` with `threads` closed-loop clients for
/// `duration`, cycling each thread through `requests` (offset by thread
/// id so threads exercise different request mixes concurrently).
///
/// Panics only on harness misuse (`requests` empty / `threads` zero);
/// request failures are counted, not thrown.
pub fn run_closed_loop(
    addr: SocketAddr,
    requests: &[NetRequest],
    threads: usize,
    duration: Duration,
    config: &ClientConfig,
) -> LoadStats {
    assert!(!requests.is_empty(), "load generator needs at least one request");
    assert!(threads > 0, "load generator needs at least one thread");

    let started = Instant::now();
    let results: Vec<(u64, u64, Vec<u64>)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let mut cfg = config.clone();
                // De-correlate the retry jitter streams across threads.
                cfg.jitter_seed = cfg.jitter_seed.wrapping_add(0x9E37_79B9_7F4A_7C15 * (t as u64 + 1));
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut errors = 0u64;
                    let mut lat_us = Vec::new();
                    let Ok(mut client) = NetClient::with_config(addr, cfg) else {
                        return (0, 1, lat_us);
                    };
                    let mut i = t; // thread-offset start into the mix
                    while started.elapsed() < duration {
                        let req = &requests[i % requests.len()];
                        i += 1;
                        let t0 = Instant::now();
                        match client.request(req) {
                            Ok(_) => {
                                ok += 1;
                                lat_us.push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (ok, errors, lat_us)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap_or((0, 1, Vec::new()))).collect()
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let requests_done: u64 = results.iter().map(|r| r.0).sum();
    let errors: u64 = results.iter().map(|r| r.1).sum();
    let mut all: Vec<u64> = results.into_iter().flat_map(|r| r.2).collect();
    all.sort_unstable();
    LoadStats {
        threads,
        requests: requests_done,
        errors,
        rps: requests_done as f64 / elapsed,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        max_us: all.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.50), 51); // nearest-rank on 0-based index
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
