//! Length-prefixed framing: the byte-level layer of the wire protocol.
//!
//! A frame is a 4-byte **big-endian** `u32` payload length followed by
//! exactly that many payload bytes (UTF-8 JSON at the layer above; this
//! module never looks inside). The codec's robustness contract:
//!
//! * **Arbitrary bytes can never panic it.** Every malformed input —
//!   truncated header, truncated payload, a length above the cap — is a
//!   typed [`FrameError`]; the proptests in `tests/frame_proptest.rs`
//!   drive random byte streams through [`read_frame`] to pin this.
//! * **Oversized lengths are rejected *before* allocation.** The header
//!   is decoded and checked against `max` by [`frame_len`]; a hostile
//!   4-GiB length never reaches `Vec::with_capacity`.
//! * **Deadlines, not hangs.** The `*_deadline` variants drive a socket
//!   in short poll quanta ([`Deadlines::poll`]) and enforce two budgets:
//!   an *idle* budget while waiting for a frame to start, and a *frame*
//!   budget from the first byte of a frame to its last — so a slow-loris
//!   client trickling one byte per second is reaped no matter how it
//!   paces the trickle. The same polling observes a shutdown flag, which
//!   is what bounds graceful-drain time on idle connections.
//!
//! A read that ends exactly on a frame boundary with zero bytes read is
//! a **clean close** ([`FrameError::Closed`]) — how well-behaved peers
//! hang up — and is distinguished from a mid-frame EOF
//! ([`FrameError::Truncated`]), which is a fault.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Bytes in the length prefix.
pub const HEADER_BYTES: usize = 4;

/// Default cap on a frame's payload size (8 MiB): far above any sane
/// request, far below an allocation that could hurt the process.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Every way framed I/O can fail, none of them a panic.
#[derive(Debug)]
pub enum FrameError {
    /// The declared payload length exceeds the frame-size cap. Detected
    /// from the 4 header bytes alone, before any payload allocation.
    Oversized {
        /// The declared payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// The peer closed the connection cleanly, on a frame boundary.
    Closed,
    /// The stream ended mid-frame: `got` of `wanted` bytes arrived.
    Truncated {
        /// Bytes received before EOF.
        got: usize,
        /// Bytes the frame section needed.
        wanted: usize,
    },
    /// A deadline elapsed. `phase` is `"idle"` (no frame started),
    /// `"frame"` (a started frame did not complete in time) or
    /// `"write"` (the peer did not drain our response in time).
    TimedOut {
        /// Which budget ran out.
        phase: &'static str,
    },
    /// The shutdown flag was observed while waiting between frames.
    ShuttingDown,
    /// Any other socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "declared frame length {len} exceeds the {max}-byte cap")
            }
            FrameError::Closed => write!(f, "connection closed on a frame boundary"),
            FrameError::Truncated { got, wanted } => {
                write!(f, "stream ended mid-frame ({got} of {wanted} bytes)")
            }
            FrameError::TimedOut { phase } => write!(f, "{phase} deadline elapsed"),
            FrameError::ShuttingDown => write!(f, "server is shutting down"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Decodes and validates a frame header: the payload length, checked
/// against `max` **before** the caller allocates anything.
pub fn frame_len(header: [u8; HEADER_BYTES], max: usize) -> Result<usize, FrameError> {
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    Ok(len)
}

/// Encodes a frame header, rejecting payloads above `max` (and, on
/// 64-bit targets, above the `u32` wire limit) with a typed error.
pub fn encode_header(len: usize, max: usize) -> Result<[u8; HEADER_BYTES], FrameError> {
    if len > max || u32::try_from(len).is_err() {
        return Err(FrameError::Oversized { len, max });
    }
    // The check above proves `len` fits u32; `as` cannot truncate here.
    Ok((len as u32).to_be_bytes())
}

/// Reads as much of `buf` as the source yields, returning the count
/// (shorter than `buf` only at EOF). `Interrupted` reads are retried.
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(got)
}

/// Blocking frame read from any byte source (the client path, and the
/// codec proptests): header, size gate, then payload. Clean EOF before
/// any header byte is [`FrameError::Closed`]; EOF anywhere later is
/// [`FrameError::Truncated`].
pub fn read_frame<R: Read + ?Sized>(r: &mut R, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    match read_full(r, &mut header)? {
        0 => return Err(FrameError::Closed),
        n if n < HEADER_BYTES => return Err(FrameError::Truncated { got: n, wanted: HEADER_BYTES }),
        _ => {}
    }
    let len = frame_len(header, max)?;
    // Allocation happens only after the size gate above.
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(FrameError::Truncated { got, wanted: len });
    }
    Ok(payload)
}

/// Blocking frame write to any byte sink: header (size-gated) then
/// payload.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8], max: usize) -> Result<(), FrameError> {
    let header = encode_header(payload.len(), max)?;
    w.write_all(&header).map_err(FrameError::Io)?;
    w.write_all(payload).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// The three time budgets of deadline-driven socket reads.
#[derive(Debug, Clone, Copy)]
pub struct Deadlines {
    /// How long a connection may sit idle waiting for a frame to start.
    pub idle: Duration,
    /// How long a started frame may take from first byte to last.
    pub frame: Duration,
    /// Poll quantum: how often a blocked read wakes to re-check budgets
    /// and the shutdown flag. Clamped to at least 1 ms.
    pub poll: Duration,
}

impl Deadlines {
    fn poll_quantum(&self) -> Duration {
        self.poll.max(Duration::from_millis(1))
    }
}

fn is_poll_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Deadline-driven frame read from a socket.
///
/// The socket's read timeout is set to the poll quantum; every wakeup
/// re-checks (a) the shutdown flag — but only while **no** frame byte
/// has arrived, so a request already in flight completes and can be
/// drained — (b) the idle budget while waiting for a frame to start,
/// and (c) the frame budget once the first byte arrived. Timeout
/// mid-frame is how slow-loris clients are reaped.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    max: usize,
    deadlines: &Deadlines,
    stop: &AtomicBool,
) -> Result<Vec<u8>, FrameError> {
    stream
        .set_read_timeout(Some(deadlines.poll_quantum()))
        .map_err(FrameError::Io)?;
    let idle_from = Instant::now();
    let mut frame_from: Option<Instant> = None;

    let mut header = [0u8; HEADER_BYTES];
    read_section(stream, &mut header, deadlines, stop, idle_from, &mut frame_from, 0)?;
    let len = frame_len(header, max)?;
    // Allocation happens only after the size gate above.
    let mut payload = vec![0u8; len];
    read_section(stream, &mut payload, deadlines, stop, idle_from, &mut frame_from, HEADER_BYTES)?;
    Ok(payload)
}

/// Reads one section (header or payload) of a frame under the budgets.
/// `already` is how many frame bytes earlier sections consumed — it
/// distinguishes a clean close (nothing read at all) from truncation.
#[allow(clippy::too_many_arguments)]
fn read_section(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadlines: &Deadlines,
    stop: &AtomicBool,
    idle_from: Instant,
    frame_from: &mut Option<Instant>,
    already: usize,
) -> Result<(), FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got + already == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated { got: got + already, wanted: buf.len() + already })
                };
            }
            Ok(n) => {
                if frame_from.is_none() {
                    *frame_from = Some(Instant::now());
                }
                got += n;
            }
            Err(e) if is_poll_timeout(&e) => match *frame_from {
                // Waiting for a frame to start: shutdown wins, then the
                // idle budget.
                // ORDERING: Relaxed — the flag is a pure control signal
                // (no data is published through it); the server's
                // thread joins provide all happens-before edges.
                None if stop.load(Ordering::Relaxed) => return Err(FrameError::ShuttingDown),
                None if idle_from.elapsed() >= deadlines.idle => {
                    return Err(FrameError::TimedOut { phase: "idle" })
                }
                // Mid-frame: only the frame budget applies (a started
                // request gets to finish even during shutdown — that is
                // the drain contract).
                Some(t0) if t0.elapsed() >= deadlines.frame => {
                    return Err(FrameError::TimedOut { phase: "frame" })
                }
                _ => {}
            },
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Deadline-driven frame write to a socket: the whole frame (header +
/// payload) must drain within `timeout`, re-checked every `poll`. A
/// peer that stops reading — the write-side slow-loris — is reaped with
/// [`FrameError::TimedOut`].
pub fn write_frame_deadline(
    stream: &mut TcpStream,
    payload: &[u8],
    max: usize,
    timeout: Duration,
    poll: Duration,
) -> Result<(), FrameError> {
    let header = encode_header(payload.len(), max)?;
    stream
        .set_write_timeout(Some(poll.max(Duration::from_millis(1))))
        .map_err(FrameError::Io)?;
    let deadline = Instant::now() + timeout;
    for section in [&header[..], payload] {
        let mut off = 0usize;
        while off < section.len() {
            match stream.write(&section[off..]) {
                Ok(0) => return Err(FrameError::Closed),
                Ok(n) => off += n,
                Err(e) if is_poll_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(FrameError::TimedOut { phase: "write" });
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 64).unwrap();
        write_frame(&mut buf, b"", 64).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"");
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_rejected_from_header_alone() {
        // Header declares u32::MAX bytes; nothing follows. The typed
        // error must come from the 4 header bytes, before allocation.
        let bytes = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(bytes), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { len, max: 1024 } if len == u32::MAX as usize));
    }

    #[test]
    fn writer_refuses_oversized_payloads() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &[0u8; 100], 10).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { len: 100, max: 10 }));
        assert!(buf.is_empty(), "nothing must reach the wire");
    }

    #[test]
    fn truncation_is_typed_at_both_sections() {
        // Two header bytes only.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 64).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { got: 2, wanted: HEADER_BYTES }));
        // Full header declaring 8 bytes, 3 delivered.
        let mut bytes = 8u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(bytes), 64).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { got: 3, wanted: 8 }));
    }

    #[test]
    fn boundary_lengths() {
        // Exactly max passes, max + 1 is rejected.
        assert_eq!(frame_len(16u32.to_be_bytes(), 16).unwrap(), 16);
        assert!(matches!(
            frame_len(17u32.to_be_bytes(), 16),
            Err(FrameError::Oversized { len: 17, max: 16 })
        ));
    }
}
