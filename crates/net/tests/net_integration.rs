//! End-to-end tests over loopback: every protocol shape travels the
//! wire correctly, validation errors arrive as typed codes, generation
//! stamps follow hot swaps, and a drained server accounts for every
//! request it answered.

mod common;

use common::{fast_config, marker, start, N_USERS};
use gmlfm_net::wire::code;
use gmlfm_net::{ClientConfig, ClientError, NetClient, NetReply, NetRequest, NetServer};
use gmlfm_service::{
    BatchRequest, FeedAck, FeedSink, Interaction, ModelServer, Request, RequestError, Response, ScoreRequest,
    TopNRequest,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn client(server: &gmlfm_net::NetServer) -> NetClient {
    NetClient::connect(server.local_addr()).expect("resolve loopback")
}

#[test]
fn every_request_shape_round_trips_over_loopback() {
    let server = start(fast_config());
    let mut client = client(&server);

    // Score, in all three wire modes.
    let resp = client
        .request(&NetRequest::Score(ScoreRequest::pair(2, 5)))
        .expect("pair scores");
    assert_eq!(resp.generation, 1);
    assert_eq!(resp.reply, NetReply::Score(marker(1)));
    let feats = NetRequest::Score(ScoreRequest::feats(vec![2u32, N_USERS as u32 + 5]));
    assert_eq!(client.request(&feats).expect("feats score").reply, NetReply::Score(marker(1)));
    let cold = NetRequest::Score(ScoreRequest::cold(3, &[("user", 1)]));
    assert_eq!(client.request(&cold).expect("cold score").reply, NetReply::Score(marker(1)));

    // Top-n: every score from the stamped generation, ties by item id.
    let resp = client.request(&NetRequest::TopN(TopNRequest::new(0, 4))).expect("top-n");
    match &resp.reply {
        NetReply::TopN(items) => {
            assert_eq!(items.len(), 4);
            for (rank, &(item, score)) in items.iter().enumerate() {
                assert_eq!(item, rank as u32, "equal scores must sort by item id");
                assert_eq!(score, marker(resp.generation));
            }
        }
        other => panic!("expected top-n reply, got {other:?}"),
    }

    // Batch: valid slots answered, the invalid slot a typed error.
    let batch = NetRequest::Batch(BatchRequest::new(vec![
        Request::Score(ScoreRequest::pair(0, 0)),
        Request::Score(ScoreRequest::pair(99, 0)), // unknown user
        Request::TopN(TopNRequest::new(1, 2)),
    ]));
    let resp = client.request(&batch).expect("batch answers");
    match &resp.reply {
        NetReply::Batch(slots) => {
            assert_eq!(slots.len(), 3);
            assert_eq!(slots[0], Ok(NetReply::Score(marker(resp.generation))));
            let err = slots[1].as_ref().expect_err("unknown user must fail its slot");
            assert_eq!(err.code, "unknown_user");
            assert!(slots[2].is_ok());
        }
        other => panic!("expected batch reply, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.served, 5, "one count per answered request: {report:?}");
}

/// A minimal ingest sink: validates through the shared server's live
/// seen overlay and counts accepted events — the transport-level half
/// of what `gmlfm-online`'s handle does in production.
struct OverlaySink {
    server: Arc<ModelServer>,
    accepted: AtomicUsize,
}

impl FeedSink for OverlaySink {
    fn feed(&self, event: &Interaction) -> Result<Response<FeedAck>, RequestError> {
        let resp = self.server.record_seen(event.user, event.item)?;
        // ORDERING: Relaxed — test statistics counter only.
        let pending = self.accepted.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(Response { generation: resp.generation, value: FeedAck { accepted: resp.value, pending } })
    }
}

#[test]
fn feed_requests_fold_exclusions_before_any_retrain() {
    let model = Arc::new(ModelServer::new(common::snapshot(1)).expect("consistent snapshot"));
    let sink = Arc::new(OverlaySink { server: Arc::clone(&model), accepted: AtomicUsize::new(0) });
    let server = NetServer::bind_with_feed(model, sink, "127.0.0.1:0", fast_config()).expect("bind loopback");
    let mut client = NetClient::connect(server.local_addr()).expect("resolve loopback");

    // Before the feed: item 2 ranks for user 0 (nothing is seen).
    let topn = NetRequest::TopN(TopNRequest::new(0, common::N_ITEMS));
    let before = client.request(&topn).expect("top-n");
    let items = |reply: &NetReply| match reply {
        NetReply::TopN(items) => items.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
        other => panic!("expected top-n reply, got {other:?}"),
    };
    assert!(items(&before.reply).contains(&2), "item 2 starts recommendable");

    // Feed (user 0, item 2): acknowledged against the current generation.
    let ack = client.request(&NetRequest::Feed(Interaction::new(0, 2))).expect("feed");
    assert_eq!(ack.reply, NetReply::Feed(FeedAck { accepted: true, pending: 1 }));

    // The very next ranking request excludes it — freshness does not
    // wait for a retrain.
    let after = client.request(&topn).expect("top-n after feed");
    assert!(!items(&after.reply).contains(&2), "fed item must leave the top-n immediately");
    assert_eq!(after.generation, 1, "no retrain happened; same generation");

    // Validation still runs before anything is recorded.
    let err = client
        .request(&NetRequest::Feed(Interaction::new(0, 10_000)))
        .expect_err("unknown item");
    match err {
        ClientError::Server(e) => assert_eq!(e.code, "unknown_item"),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn feed_without_a_sink_is_a_typed_final_error() {
    let server = start(fast_config());
    let mut client = client(&server);
    let err = client
        .request(&NetRequest::Feed(Interaction::new(0, 0)))
        .expect_err("no sink bound");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, code::FEED_UNAVAILABLE);
            assert!(!ClientError::Server(e).is_retryable(), "a sink never appears mid-flight");
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn validation_errors_arrive_as_typed_codes_and_are_not_retried() {
    let server = start(fast_config());
    let mut client = client(&server);

    let err = client
        .request(&NetRequest::Score(ScoreRequest::pair(99, 0)))
        .expect_err("unknown user");
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.code, "unknown_user");
            assert!(e.message.contains("99"), "message names the offender: {}", e.message);
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }

    let report = server.shutdown();
    // A deterministic validation error must consume exactly one request
    // on the server — retrying it would be pointless.
    assert_eq!(report.served, 1);
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn generation_stamps_follow_hot_swaps() {
    let server = start(fast_config());
    let mut client = client(&server);

    let resp = client.request(&NetRequest::Score(ScoreRequest::pair(0, 0))).expect("scores");
    assert_eq!((resp.generation, resp.reply), (1, NetReply::Score(marker(1))));

    let swapped = server.model().swap(common::snapshot(2)).expect("compatible snapshot");
    assert_eq!(swapped, 2);

    let resp = client
        .request(&NetRequest::Score(ScoreRequest::pair(0, 0)))
        .expect("scores after swap");
    assert_eq!((resp.generation, resp.reply), (2, NetReply::Score(marker(2))));
    assert_eq!(server.generation(), 2);

    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn connecting_to_a_dead_server_fails_typed_after_retries() {
    // Bind-and-drop to get a port that refuses connections.
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").port()
    };
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(200),
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..ClientConfig::default()
    };
    let mut client = NetClient::with_config(("127.0.0.1", port), config).expect("resolve");
    let err = client
        .request(&NetRequest::Score(ScoreRequest::pair(0, 0)))
        .expect_err("nothing listening");
    assert!(matches!(err, ClientError::Connect(_)), "got {err:?}");
    assert!(err.is_retryable());
}

#[test]
fn overloaded_replies_are_retried_until_capacity_frees() {
    // Budget of 1: a parked raw connection occupies the only slot, so
    // the client's first attempt is shed with a typed `overloaded`
    // reply; the slot frees while it backs off, and the retry lands.
    let server = start(gmlfm_net::ServerConfig { max_connections: 1, ..fast_config() });
    let parked = std::net::TcpStream::connect(server.local_addr()).expect("park a connection");
    std::thread::sleep(Duration::from_millis(100)); // let its handler claim the slot

    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        drop(parked);
    });
    let config = ClientConfig {
        max_attempts: 8,
        base_backoff: Duration::from_millis(80),
        max_backoff: Duration::from_millis(200),
        ..ClientConfig::default()
    };
    let mut client = NetClient::with_config(server.local_addr(), config).expect("resolve");
    let resp = client
        .request(&NetRequest::Score(ScoreRequest::pair(0, 0)))
        .expect("retry succeeds");
    assert_eq!(resp.reply, NetReply::Score(marker(1)));
    release.join().expect("release thread");

    let report = server.shutdown();
    assert!(report.shed >= 1, "at least one attempt was shed: {report:?}");
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn malformed_json_in_a_valid_frame_keeps_the_connection_alive() {
    use gmlfm_net::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
    let server = start(fast_config());
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");

    // Garbage payload inside a well-formed frame: typed reply, same
    // connection still serves the next (valid) request.
    write_frame(&mut stream, b"{\"op\": nope", DEFAULT_MAX_FRAME_BYTES).expect("send garbage");
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("typed reply");
    let err = gmlfm_net::wire::decode_response(&reply)
        .expect("envelope")
        .expect_err("error envelope");
    assert_eq!(err.code, code::BAD_REQUEST);

    let valid = gmlfm_net::wire::encode_request(&NetRequest::Score(ScoreRequest::pair(0, 0)));
    write_frame(&mut stream, valid.as_bytes(), DEFAULT_MAX_FRAME_BYTES).expect("send valid");
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("reply");
    let resp = gmlfm_net::wire::decode_response(&reply).expect("envelope").expect("success");
    assert_eq!(resp.reply, NetReply::Score(marker(1)));

    let report = server.shutdown();
    assert_eq!(report.served, 2, "both frames were answered");
    assert_eq!(report.worker_panics, 0);
}
