//! Fault injection against the network server: hostile framing, slow
//! clients, connection storms, and swaps/shutdowns racing in-flight
//! requests. The invariant under every fault is the same — a typed
//! error or a clean close, never a panic, never a hung thread, never a
//! reply mixing model generations — and every test ends in a drain
//! whose `worker_panics == 0` is the no-panic witness.

mod common;

use common::{fast_config, marker, snapshot, start};
use gmlfm_net::frame::{read_frame, DEFAULT_MAX_FRAME_BYTES};
use gmlfm_net::wire::{self, code};
use gmlfm_net::{ClientConfig, NetClient, NetReply, NetRequest, ServerConfig};
use gmlfm_service::{BatchRequest, Request, ScoreRequest, TopNRequest};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn score_payload() -> String {
    wire::encode_request(&NetRequest::Score(ScoreRequest::pair(0, 0)))
}

/// The server still answers a healthy client — the liveness probe run
/// after each injected fault.
fn assert_still_serving(server: &gmlfm_net::NetServer) {
    let mut client = NetClient::connect(server.local_addr()).expect("resolve");
    let resp = client
        .request(&NetRequest::Score(ScoreRequest::pair(1, 1)))
        .expect("healthy request");
    assert_eq!(resp.reply, NetReply::Score(marker(resp.generation)));
}

#[test]
fn truncated_frames_close_cleanly_and_leave_the_server_healthy() {
    let server = start(fast_config());

    // Half a header, then disconnect.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&[0u8, 0]).expect("partial header");
    drop(stream);

    // Full header promising 64 bytes, 5 delivered, then disconnect.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&64u32.to_be_bytes()).expect("header");
    stream.write_all(b"hello").expect("partial payload");
    drop(stream);

    assert_still_serving(&server);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn oversized_frames_get_a_typed_reply_then_a_close() {
    let server = start(fast_config());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&u32::MAX.to_be_bytes()).expect("hostile header");

    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("typed reply before close");
    let err = wire::decode_response(&reply).expect("envelope").expect_err("error envelope");
    assert_eq!(err.code, code::OVERSIZED_FRAME);
    assert!(err.message.contains(&u32::MAX.to_string()), "names the length: {}", err.message);

    // The stream cannot be re-synchronised, so the server closes it.
    let mut rest = Vec::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    assert_eq!(stream.read_to_end(&mut rest).expect("clean close"), 0);

    assert_still_serving(&server);
    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn garbage_byte_streams_never_panic_the_server() {
    let server = start(fast_config());
    // A deterministic xorshift spray of hostile byte blobs, each its
    // own connection: some look like huge frames, some like tiny ones,
    // none are valid. Every connection must end in a clean close or a
    // typed reply, and the server must stay healthy throughout.
    let mut state = 0x5eed_cafe_u64 | 1;
    for len in [1usize, 3, 4, 5, 17, 64, 257] {
        let mut blob = vec![0u8; len];
        for b in &mut blob {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            *b = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&blob).expect("spray");
        drop(stream);
    }
    assert_still_serving(&server);
    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn byte_at_a_time_writes_within_the_deadline_still_succeed() {
    let config = ServerConfig { frame_timeout: Duration::from_secs(5), ..fast_config() };
    let server = start(config);
    let payload = score_payload();

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(payload.as_bytes());
    for &b in &framed {
        stream.write_all(&[b]).expect("one byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("reply to trickled request");
    let resp = wire::decode_response(&reply).expect("envelope").expect("success");
    assert_eq!(resp.reply, NetReply::Score(marker(resp.generation)));

    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn slow_loris_clients_are_reaped_at_the_frame_deadline() {
    let server = start(fast_config()); // frame budget: 400 ms
    let started = Instant::now();

    // Start a frame, then stall forever.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&16u32.to_be_bytes()).expect("header");
    stream.write_all(b"{").expect("one byte, then silence");

    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).expect("server closes the connection");
    assert_eq!(n, 0, "no unsolicited reply on a desynchronised stream");
    assert!(started.elapsed() < Duration::from_secs(5), "reaped by the deadline, not by luck");

    assert_still_serving(&server);
    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn idle_connections_are_closed_at_the_idle_deadline() {
    let server = start(fast_config()); // idle budget: 500 ms
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let started = Instant::now();
    let mut buf = Vec::new();
    let n = (&stream).read_to_end(&mut buf).expect("clean close");
    assert_eq!(n, 0);
    assert!(started.elapsed() >= Duration::from_millis(400), "not closed before the budget");
    assert!(started.elapsed() < Duration::from_secs(5), "closed promptly after it");
    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn connection_storms_shed_typed_overloaded_replies() {
    let server = start(ServerConfig { max_connections: 2, ..fast_config() });

    // Two parked connections fill the budget.
    let parked: Vec<TcpStream> =
        (0..2).map(|_| TcpStream::connect(server.local_addr()).expect("park")).collect();
    std::thread::sleep(Duration::from_millis(100)); // handlers claim their slots

    // A storm of further connections: each must read a typed
    // `overloaded` envelope followed by a clean close — never a silent
    // drop, never a hang.
    for _ in 0..8 {
        let mut stream = TcpStream::connect(server.local_addr()).expect("storm connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME_BYTES).expect("typed shed reply");
        let err = wire::decode_response(&reply).expect("envelope").expect_err("error envelope");
        assert_eq!(err.code, code::OVERLOADED);
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).expect("clean close"), 0);
    }

    drop(parked);
    std::thread::sleep(Duration::from_millis(50));
    assert_still_serving(&server);

    let report = server.shutdown();
    assert!(report.shed >= 8, "all storm connections were shed: {report:?}");
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn hot_swaps_racing_requests_never_mix_generations_on_the_wire() {
    let server = start(ServerConfig { max_connections: 32, ..fast_config() });
    let addr = server.local_addr();
    let model = std::sync::Arc::clone(server.model());

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // A writer swapping as fast as it can.
        let stop = &stop;
        let swapper = s.spawn(move || {
            let mut g = 1u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                g += 1;
                model.swap(snapshot(g)).expect("compatible snapshot");
            }
            g
        });

        // Clients hammering every request shape; each reply's values
        // must be fully explained by its stamped generation.
        let mut clients = Vec::new();
        for t in 0..3u32 {
            clients.push(s.spawn(move || {
                let mut client = NetClient::connect(addr).expect("resolve");
                let mut checked = 0u64;
                let deadline = Instant::now() + Duration::from_millis(500);
                while Instant::now() < deadline {
                    let reqs = [
                        NetRequest::Score(ScoreRequest::pair(t, 3)),
                        NetRequest::TopN(TopNRequest::new(t, 3)),
                        NetRequest::Batch(BatchRequest::new(vec![
                            Request::Score(ScoreRequest::pair(t, 0)),
                            Request::TopN(TopNRequest::new(t, 2)),
                        ])),
                    ];
                    for req in &reqs {
                        let resp = client.request(req).expect("request under swap storm");
                        let expect = marker(resp.generation);
                        match &resp.reply {
                            NetReply::Score(x) => assert_eq!(*x, expect, "torn score"),
                            NetReply::TopN(items) => {
                                for &(_, score) in items {
                                    assert_eq!(score, expect, "torn top-n");
                                }
                            }
                            NetReply::Batch(slots) => {
                                for slot in slots {
                                    match slot.as_ref().expect("valid sub-request") {
                                        NetReply::Score(x) => assert_eq!(*x, expect, "torn batch score"),
                                        NetReply::TopN(items) => {
                                            for &(_, score) in items {
                                                assert_eq!(score, expect, "torn batch top-n");
                                            }
                                        }
                                        NetReply::Batch(_) => unreachable!("batches cannot nest"),
                                        NetReply::Feed(_) => unreachable!("no feed in this batch"),
                                    }
                                }
                            }
                            NetReply::Feed(_) => unreachable!("no feed requests sent"),
                        }
                        checked += 1;
                    }
                }
                checked
            }));
        }
        let total: u64 = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let swaps = swapper.join().expect("swapper thread");
        assert!(total > 0, "clients made progress");
        assert!(swaps > 1, "swapper made progress");
    });

    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn shutdown_mid_traffic_drains_without_panics_or_hangs() {
    let server = start(ServerConfig { max_connections: 32, ..fast_config() });
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4u32)
        .map(|t| {
            std::thread::spawn(move || {
                // No retries: a shutdown-raced request may fail exactly
                // once, and this thread must observe it as a typed
                // error or clean close, not a hang.
                let config = ClientConfig { max_attempts: 1, ..ClientConfig::default() };
                let mut client = NetClient::with_config(addr, config).expect("resolve");
                let mut ok = 0u64;
                loop {
                    match client.request(&NetRequest::Score(ScoreRequest::pair(t, 1))) {
                        Ok(resp) => {
                            assert_eq!(resp.reply, NetReply::Score(marker(resp.generation)), "torn reply");
                            ok += 1;
                        }
                        // Any typed failure ends the loop: the server
                        // is gone (or going), which is the point.
                        Err(_) => return ok,
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    let started = Instant::now();
    let report = server.shutdown();
    assert!(started.elapsed() < Duration::from_secs(10), "drain is bounded");
    assert_eq!(report.worker_panics, 0, "no handler died to a panic: {report:?}");

    let total: u64 = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
    assert!(total > 0, "traffic flowed before the shutdown");
    assert!(report.served >= total, "every acknowledged reply was counted: {report:?} vs {total}");
}
