//! Shared fixture for the network tests: the generation-marker model
//! from the service hot-swap suite (every score of generation `g` is
//! exactly `g * 1000.0`, so any response whose value disagrees with
//! `marker(response.generation)` proves a torn or cross-generation
//! read), plus a fast-timeout server config for fault injection.
#![allow(dead_code)]

use std::sync::Arc;
use std::time::Duration;

use gmlfm_data::{FieldKind, Schema};
use gmlfm_net::{NetServer, ServerConfig};
use gmlfm_serve::{FrozenModel, SecondOrder};
use gmlfm_service::{Catalog, ModelServer, ModelSnapshot};
use gmlfm_tensor::Matrix;

pub const N_USERS: usize = 8;
pub const N_ITEMS: usize = 12;

pub fn schema() -> Schema {
    Schema::from_specs(&[("user", N_USERS, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)])
}

pub fn catalog() -> Catalog {
    Catalog::new(
        vec![1],
        (0..N_USERS as u32).map(|u| vec![u, N_USERS as u32]).collect(),
        (0..N_ITEMS as u32).map(|i| vec![N_USERS as u32 + i]).collect(),
    )
}

/// The score every request against generation `g` must return.
pub fn marker(generation: u64) -> f64 {
    generation as f64 * 1000.0
}

/// A snapshot whose every score is exactly `marker(generation)`.
pub fn snapshot(generation: u64) -> ModelSnapshot {
    let n = N_USERS + N_ITEMS;
    let frozen =
        FrozenModel::from_parts(marker(generation), vec![0.0; n], Matrix::zeros(n, 3), SecondOrder::Dot);
    ModelSnapshot { schema: schema(), frozen, catalog: Some(catalog()), seen: None, index: None }
}

/// Timeouts small enough that fault-injection tests finish in seconds
/// but large enough that a loaded CI machine does not trip them on
/// healthy traffic.
pub fn fast_config() -> ServerConfig {
    ServerConfig {
        max_connections: 16,
        idle_timeout: Duration::from_millis(500),
        frame_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(500),
        poll: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

/// A running server over the marker model at generation 1.
pub fn start(config: ServerConfig) -> NetServer {
    let model = Arc::new(ModelServer::new(snapshot(1)).expect("consistent snapshot"));
    NetServer::bind(model, "127.0.0.1:0", config).expect("bind loopback")
}
