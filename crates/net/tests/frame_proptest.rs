//! Property tests for the frame codec and wire format: arbitrary
//! protocol values round-trip exactly, arbitrary byte streams are
//! decoded totally (typed errors, never panics), and oversized declared
//! lengths are rejected from the header alone — before any allocation
//! could happen.

use gmlfm_net::frame::{self, FrameError, HEADER_BYTES};
use gmlfm_net::wire::{self, NetError, NetReply, NetRequest, NetResponse};
use gmlfm_par::Parallelism;
use gmlfm_serve::{Precision, RetrievalStrategy};
use gmlfm_service::{BatchRequest, Request, ScoreRequest, TopNRequest};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use std::io::Cursor;

fn arb_score() -> impl Strategy<Value = ScoreRequest> {
    prop_oneof![
        vec(any::<u32>(), 0..6).prop_map(ScoreRequest::Feats),
        (any::<u32>(), any::<u32>()).prop_map(|(user, item)| ScoreRequest::Pair { user, item }),
        (any::<u32>(), vec((0usize..4, 0usize..100), 0..4)).prop_map(|(item, raw)| ScoreRequest::Cold {
            item,
            fields: raw.into_iter().map(|(f, v)| (format!("field{f}"), v)).collect(),
        }),
    ]
}

fn arb_strategy() -> impl Strategy<Value = Option<RetrievalStrategy>> {
    prop_oneof![
        Just(None),
        Just(Some(RetrievalStrategy::Exact)),
        option::of(1usize..64).prop_map(|nprobe| Some(RetrievalStrategy::Ivf { nprobe })),
    ]
}

fn arb_precision() -> impl Strategy<Value = Option<Precision>> {
    prop_oneof![Just(None), Just(Some(Precision::F64)), Just(Some(Precision::F32)), Just(Some(Precision::I8)),]
}

fn arb_topn() -> impl Strategy<Value = TopNRequest> {
    (
        (any::<u32>(), 0usize..1000, option::of(vec(any::<u32>(), 0..5))),
        (vec(any::<u32>(), 0..4), any::<bool>(), option::of(1usize..16), arb_strategy(), arb_precision()),
    )
        .prop_map(|((user, n, candidates), (exclude, exclude_seen, par, strategy, precision))| {
            TopNRequest {
                user,
                n,
                candidates,
                exclude,
                exclude_seen,
                par: par.map(Parallelism::threads),
                strategy,
                precision,
            }
        })
}

fn arb_request() -> impl Strategy<Value = NetRequest> {
    let sub = prop_oneof![arb_score().prop_map(Request::Score), arb_topn().prop_map(Request::TopN),];
    prop_oneof![
        arb_score().prop_map(NetRequest::Score),
        arb_topn().prop_map(NetRequest::TopN),
        (vec(sub, 0..4), option::of(1usize..8)).prop_map(|(requests, par)| {
            NetRequest::Batch(BatchRequest { requests, par: par.map(Parallelism::threads) })
        }),
    ]
}

fn arb_reply() -> impl Strategy<Value = NetReply> {
    let scalar = prop_oneof![
        (any::<u64>()).prop_map(|bits| NetReply::Score(sanitise(f64::from_bits(bits)))),
        vec((any::<u32>(), any::<u64>()), 0..5).prop_map(|items| {
            NetReply::TopN(items.into_iter().map(|(i, bits)| (i, sanitise(f64::from_bits(bits)))).collect())
        }),
    ];
    let error = (0u8..4, 0u8..4).prop_map(|(c, m)| {
        NetError::new(format!("code_{c}"), format!("message {m} with \"quotes\" and \n newlines"))
    });
    prop_oneof![
        (any::<u64>()).prop_map(|bits| NetReply::Score(sanitise(f64::from_bits(bits)))),
        vec((scalar, error), 0..4).prop_map(|slots| {
            NetReply::Batch(
                slots
                    .into_iter()
                    .enumerate()
                    .map(|(i, (r, e))| if i % 2 == 0 { Ok(r) } else { Err(e) })
                    .collect(),
            )
        }),
    ]
}

/// JSON (and the vendored writer) collapse every NaN to `null` → NaN,
/// so NaN payloads round-trip by policy, not bit-exactly; `PartialEq`
/// on `NetReply` would still reject them. Map NaN to a fixed finite
/// value and keep infinities out the same way — their lossy encoding is
/// the serialiser's documented contract, not the codec's.
fn sanitise(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        -0.5
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip_exactly(req in arb_request()) {
        let text = wire::encode_request(&req);
        let back = wire::decode_request(text.as_bytes()).map_err(|e| e.message);
        prop_assert_eq!(back, Ok(req), "wire text: {}", text);
    }

    #[test]
    // Generations ride a JSON number, exact up to 2^53 (the documented
    // wire precision; they increment by 1 per swap, so the bound is
    // unreachable in practice).
    fn responses_round_trip_exactly(generation in 0u64..(1 << 53), reply in arb_reply()) {
        let resp = NetResponse { generation, reply };
        let text = wire::encode_response(&resp);
        let back = wire::decode_response(text.as_bytes());
        match back {
            Ok(Ok(b)) => prop_assert_eq!(b, resp, "wire text: {}", text),
            other => prop_assert!(false, "decode failed: {:?} for {}", other, text),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in vec(any::<u8>(), 0..200)) {
        // Totality is the property: any result is fine, panics are not.
        let _ = wire::decode_request(&bytes);
        let _ = wire::decode_response(&bytes);
        let _ = frame::read_frame(&mut Cursor::new(&bytes), 64);
    }

    #[test]
    fn frames_round_trip_through_the_codec(payload in vec(any::<u8>(), 0..300), extra in vec(any::<u8>(), 0..10)) {
        let mut buf = Vec::new();
        frame::write_frame(&mut buf, &payload, 1024).unwrap();
        let boundary = buf.len();
        buf.extend_from_slice(&extra); // trailing bytes of the next frame
        let mut cursor = Cursor::new(&buf);
        let back = frame::read_frame(&mut cursor, 1024).unwrap();
        prop_assert_eq!(back, payload);
        prop_assert_eq!(cursor.position() as usize, boundary, "reader stops on the frame boundary");
    }

    #[test]
    fn truncated_frames_are_typed(payload in vec(any::<u8>(), 1..100), cut in 0usize..100) {
        let mut buf = Vec::new();
        frame::write_frame(&mut buf, &payload, 1024).unwrap();
        let cut = cut % buf.len(); // strictly shorter than the frame
        let result = frame::read_frame(&mut Cursor::new(&buf[..cut]), 1024);
        match result {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0, "Closed only on the frame boundary"),
            Err(FrameError::Truncated { got, wanted }) => {
                prop_assert!(got < wanted, "got {} of {}", got, wanted);
                prop_assert!(cut > 0);
            }
            other => prop_assert!(false, "expected typed truncation, got {:?}", other),
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation(len in any::<u32>(), max in 0usize..4096) {
        let header = len.to_be_bytes();
        let result = frame::frame_len(header, max);
        if len as usize <= max {
            prop_assert_eq!(result.ok(), Some(len as usize));
        } else {
            // The typed rejection comes from the 4 header bytes alone:
            // no payload exists, so no allocation can have happened.
            match result {
                Err(FrameError::Oversized { len: l, max: m }) => {
                    prop_assert_eq!(l, len as usize);
                    prop_assert_eq!(m, max);
                }
                other => prop_assert!(false, "expected Oversized, got {:?}", other),
            }
            // And the streaming reader agrees, with only the header on
            // the wire.
            let read = frame::read_frame(&mut Cursor::new(&header[..]), max);
            prop_assert!(matches!(read, Err(FrameError::Oversized { .. })));
        }
    }

    #[test]
    fn header_encoding_is_the_readers_inverse(len in 0usize..4096) {
        let header = frame::encode_header(len, 4096).unwrap();
        prop_assert_eq!(header.len(), HEADER_BYTES);
        prop_assert_eq!(frame::frame_len(header, 4096).unwrap(), len);
    }
}
