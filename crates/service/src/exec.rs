//! Request validation and execution: the one code path every serving
//! entry point shares.
//!
//! Validation is pure over the snapshot's [`Schema`] and [`Catalog`];
//! scoring goes through the [`ScoringBackend`] trait so the frozen
//! serving path and the engine's live (non-freezable) estimators answer
//! the same requests with identical semantics. [`crate::ModelServer`]
//! wires these functions to its current snapshot; `gmlfm-engine`'s
//! `Recommender` wires them to whichever serving form it holds.

use crate::catalog::{Catalog, SeenItems};
use crate::error::RequestError;
use crate::protocol::{BatchRequest, Interaction, Reply, Request, ScoreRequest, TopNRequest};
use gmlfm_data::{FieldKind, Schema};
use gmlfm_par::Parallelism;
use gmlfm_serve::{
    scan_top_n_prec, sharded_top_n_blocks, FrozenModel, ItemFeatureSource, IvfIndex, Precision,
    RetrievalStrategy, TopNHeap,
};
use std::borrow::Cow;
use std::cell::RefCell;

/// What executes a validated request: one score per feature vector,
/// catalogue candidate scoring for the evaluation protocols, and
/// bounded-heap top-N selection for ranking requests.
///
/// Implementations may ignore `par` (the engine's live estimators score
/// through their own batch path); the frozen implementation partitions
/// candidates across the `gmlfm-par` pool with one
/// [`gmlfm_serve::TopNRanker`] per worker block, merged in candidate
/// order — bit-identical to serial at every thread count.
pub trait ScoringBackend {
    /// Scores one validated feature vector.
    fn score_feats(&self, feats: &[u32]) -> f64;

    /// Scores `candidates` for the user whose resolved feature
    /// `template` is given ([`Catalog::template`]), returning one score
    /// per candidate **in candidate order**.
    ///
    /// The template is the validation evidence: it only exists for an
    /// in-range user, so implementations never re-check the user id.
    /// Candidates come out of [`resolve_candidates`] against the same
    /// catalog, so their item-table rows are in range by construction.
    fn candidate_scores(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        par: Parallelism,
    ) -> Vec<f64>;

    /// Selects the top `n` of resolved `candidates` for the user with
    /// feature `template` under the retrieval total order
    /// ([`gmlfm_serve::rank_cmp`]: score descending, ties by ascending
    /// item id), best first.
    ///
    /// The default implementation scores everything through
    /// [`candidate_scores`] and selects with one bounded [`TopNHeap`] —
    /// `O(C·log n)` selection, never a full sort. The frozen
    /// implementation overrides this with per-shard rankers
    /// ([`sharded_top_n`]), which also skips materialising the `O(C)`
    /// score vector. Both produce item-for-item identical rankings.
    ///
    /// [`candidate_scores`]: ScoringBackend::candidate_scores
    /// [`sharded_top_n`]: gmlfm_serve::sharded_top_n
    fn select_top_n(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        n: usize,
        par: Parallelism,
    ) -> Vec<(u32, f64)> {
        let scores = self.candidate_scores(catalog, template, candidates, par);
        let mut heap = TopNHeap::new(n);
        for (&item, score) in candidates.iter().zip(scores) {
            heap.push(item, score);
        }
        heap.into_sorted()
    }

    /// The precision this backend serves at when a request doesn't pin
    /// its own ([`TopNRequest::precision`] is `None`). The default —
    /// and every backend without low-precision scoring tables — is
    /// [`Precision::F64`]: exact scores.
    fn default_precision(&self) -> Precision {
        Precision::F64
    }

    /// [`select_top_n`] with an explicit scoring-table [`Precision`].
    ///
    /// Backends without low-precision tables (the default
    /// implementation) serve every precision exactly. The frozen
    /// implementation scans its `f32`/`i8` table when the model carries
    /// one — [`Precision::F32`] returns the approximate table scores,
    /// [`Precision::I8`] re-ranks an over-fetched pool exactly so
    /// returned scores stay bitwise the `f64` model's — and falls back
    /// to the exact scan when it doesn't.
    ///
    /// [`select_top_n`]: ScoringBackend::select_top_n
    fn select_top_n_prec(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        n: usize,
        _precision: Precision,
        par: Parallelism,
    ) -> Vec<(u32, f64)> {
        self.select_top_n(catalog, template, candidates, n, par)
    }

    /// Index-backed whole-catalogue retrieval, when this backend can
    /// serve it: the top `n` non-excluded items via an IVF probe
    /// ([`gmlfm_serve::IvfIndex::search_prec`]), scores bitwise the
    /// exact ranker's at every `precision` (a low-precision probe only
    /// picks the candidate pool; survivors are re-scored in `f64`).
    /// `excluded` is the **sorted, deduplicated** union of the request's
    /// explicit exclusions and the user's seen items.
    ///
    /// Returns `None` when the backend holds no usable index for this
    /// request (no index, candidate pool below the index's
    /// `min_candidates`, `n` too large a fraction of the pool, catalogue
    /// size mismatch) — the caller then falls back to the sharded heap
    /// scan. The default implementation always falls back.
    #[allow(clippy::too_many_arguments)]
    fn select_top_n_indexed(
        &self,
        _catalog: &Catalog,
        _template: &[u32],
        _n: usize,
        _nprobe: Option<usize>,
        _excluded: &[u32],
        _precision: Precision,
        _par: Parallelism,
    ) -> Option<Vec<(u32, f64)>> {
        None
    }
}

/// A frozen model paired with its (optional) IVF index: the backend a
/// [`crate::ModelServer`] snapshot actually serves through. Scoring and
/// exact retrieval delegate to the model; whole-catalogue top-n
/// requests additionally get the indexed path when the index can serve
/// them (see [`ScoringBackend::select_top_n_indexed`]).
#[derive(Debug, Clone, Copy)]
pub struct IndexedModel<'a> {
    /// The frozen scoring model.
    pub frozen: &'a FrozenModel,
    /// The catalogue index, when the snapshot carries one.
    pub index: Option<&'a IvfIndex>,
}

impl ScoringBackend for IndexedModel<'_> {
    fn score_feats(&self, feats: &[u32]) -> f64 {
        self.frozen.score_feats(feats)
    }

    fn candidate_scores(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        par: Parallelism,
    ) -> Vec<f64> {
        self.frozen.candidate_scores(catalog, template, candidates, par)
    }

    fn select_top_n(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        n: usize,
        par: Parallelism,
    ) -> Vec<(u32, f64)> {
        self.frozen.select_top_n(catalog, template, candidates, n, par)
    }

    fn default_precision(&self) -> Precision {
        self.frozen.precision()
    }

    fn select_top_n_prec(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        n: usize,
        precision: Precision,
        par: Parallelism,
    ) -> Vec<(u32, f64)> {
        self.frozen.select_top_n_prec(catalog, template, candidates, n, precision, par)
    }

    #[allow(clippy::too_many_arguments)]
    fn select_top_n_indexed(
        &self,
        catalog: &Catalog,
        template: &[u32],
        n: usize,
        nprobe: Option<usize>,
        excluded: &[u32],
        precision: Precision,
        par: Parallelism,
    ) -> Option<Vec<(u32, f64)>> {
        let index = self.index?;
        if index.n_items() != catalog.n_items() {
            return None;
        }
        // Below these sizes the probe bookkeeping costs more than the
        // scan it saves — serve exactly.
        let surviving = catalog.n_items() - excluded.len();
        if surviving < index.min_candidates() || n.saturating_mul(4) > surviving {
            return None;
        }
        let nprobe = nprobe.unwrap_or_else(|| index.default_nprobe()).clamp(1, index.n_clusters());
        Some(index.search_prec(
            self.frozen,
            catalog,
            template,
            catalog.item_slots(),
            n,
            nprobe,
            par,
            &|item| excluded.binary_search(&item).is_ok(),
            precision,
        ))
    }
}

impl ScoringBackend for FrozenModel {
    fn score_feats(&self, feats: &[u32]) -> f64 {
        self.predict_feats(feats)
    }

    fn candidate_scores(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        par: Parallelism,
    ) -> Vec<f64> {
        let item_slots = catalog.item_slots();
        gmlfm_par::par_blocks(par, candidates.len(), |range| {
            // One ranker per worker block: the context partial sums are
            // computed once and reused for every candidate in the block.
            let mut ranker = self.ranker(template, item_slots);
            candidates[range]
                .iter()
                .map(|&item| ranker.score(catalog.features_of(item)))
                .collect()
        })
    }

    /// Sharded bounded-heap retrieval: one contiguous candidate shard
    /// per requested worker, each with its own [`gmlfm_serve::TopNRanker`]
    /// (context partials computed once per shard) and size-`n`
    /// [`TopNHeap`], merged in shard order under [`gmlfm_serve::rank_cmp`]. No full
    /// score vector and no full sort — `O(C·k + C·log n)` per request.
    /// Candidates are scored in fixed-width blocks
    /// ([`gmlfm_serve::TopNRanker::score_block`]) so the delta-scan inner
    /// loops stay in the chunked kernels; block scoring is bitwise the
    /// per-item path.
    fn select_top_n(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        n: usize,
        par: Parallelism,
    ) -> Vec<(u32, f64)> {
        let item_slots = catalog.item_slots();
        sharded_top_n_blocks(
            candidates,
            n,
            par.get_nonzero(),
            par,
            || self.ranker(template, item_slots),
            |ranker, ids, out| ranker.score_block(catalog, ids, out),
        )
    }

    fn default_precision(&self) -> Precision {
        self.precision()
    }

    /// Low-precision candidate scan when the model carries the matching
    /// table ([`gmlfm_serve::scan_top_n_prec`]): `f32` scans return the
    /// approximate table scores, `i8` scans over-fetch and re-rank
    /// exactly. [`Precision::F64`] — and any precision the model has no
    /// table for — serves through the exact sharded block scan.
    fn select_top_n_prec(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        n: usize,
        precision: Precision,
        par: Parallelism,
    ) -> Vec<(u32, f64)> {
        let low = match precision {
            Precision::F64 => None,
            _ => scan_top_n_prec(
                self,
                catalog,
                candidates,
                template,
                catalog.item_slots(),
                n,
                precision,
                par.get_nonzero(),
                par,
            ),
        };
        low.unwrap_or_else(|| self.select_top_n(catalog, template, candidates, n, par))
    }
}

/// Validates a [`ScoreRequest`] and resolves it into the feature vector
/// to score. Borrows the request's own indices where possible.
pub fn resolve_feats<'r>(
    schema: &Schema,
    catalog: Option<&Catalog>,
    req: &'r ScoreRequest,
) -> Result<Cow<'r, [u32]>, RequestError> {
    let n = schema.total_dim();
    let check = |feats: &[u32]| -> Result<(), RequestError> {
        match feats.iter().find(|&&f| f as usize >= n) {
            Some(&feature) => Err(RequestError::FeatureOutOfRange { feature, n_features: n }),
            None => Ok(()),
        }
    };
    match req {
        ScoreRequest::Instance(inst) => {
            check(&inst.feats)?;
            Ok(Cow::Borrowed(inst.feats.as_slice()))
        }
        ScoreRequest::Feats(feats) => {
            check(feats)?;
            Ok(Cow::Borrowed(feats.as_slice()))
        }
        ScoreRequest::Pair { user, item } => {
            let catalog = catalog.ok_or(RequestError::MissingCatalog)?;
            let template = user_template(catalog, *user)?;
            let group = item_group(catalog, *item)?;
            Ok(Cow::Owned(catalog.splice(template, group)))
        }
        ScoreRequest::Cold { item, fields } => {
            let catalog = catalog.ok_or(RequestError::MissingCatalog)?;
            let mut feats: Vec<u32> = item_group(catalog, *item)?.to_vec();
            push_user_fields(schema, fields, &mut feats)?;
            // Global indices ascend with field order, so sorting restores
            // the field order a schema-built instance would have (which
            // the order-dependent TransFM mode cares about).
            feats.sort_unstable();
            Ok(Cow::Owned(feats))
        }
    }
}

/// Validates named user-side `(field, value)` pairs against the schema
/// and appends their global feature indices to `feats` — the shared
/// validation of [`ScoreRequest::Cold`] requests and fed
/// [`Interaction`]s: unknown, duplicated, item-side, and out-of-range
/// fields are all typed errors.
fn push_user_fields(
    schema: &Schema,
    fields: &[(String, usize)],
    feats: &mut Vec<u32>,
) -> Result<(), RequestError> {
    for (i, (name, value)) in fields.iter().enumerate() {
        if fields[..i].iter().any(|(prev, _)| prev == name) {
            return Err(RequestError::DuplicateField { field: name.clone() });
        }
        let field_idx = schema
            .fields()
            .iter()
            .position(|f| &f.name == name)
            .ok_or_else(|| RequestError::UnknownField { field: name.clone() })?;
        let field = &schema.fields()[field_idx];
        if !matches!(field.kind, FieldKind::User | FieldKind::UserAttr) {
            return Err(RequestError::ItemSideField { field: name.clone() });
        }
        if *value >= field.cardinality {
            return Err(RequestError::ValueOutOfRange {
                field: name.clone(),
                value: *value,
                cardinality: field.cardinality,
            });
        }
        feats.push(schema.feature_index(field_idx, *value));
    }
    Ok(())
}

/// Validates a streamed [`Interaction`] against the snapshot's schema
/// and catalog and resolves the full training feature vector it
/// contributes: the catalog's `(user, item)` splice plus any validated
/// extra user-side fields, sorted into schema field order.
pub fn resolve_interaction(
    schema: &Schema,
    catalog: Option<&Catalog>,
    event: &Interaction,
) -> Result<Vec<u32>, RequestError> {
    let catalog = catalog.ok_or(RequestError::MissingCatalog)?;
    let template = user_template(catalog, event.user)?;
    let group = item_group(catalog, event.item)?;
    let mut feats = catalog.splice(template, group);
    push_user_fields(schema, &event.fields, &mut feats)?;
    feats.sort_unstable();
    feats.dedup();
    Ok(feats)
}

/// Validates and runs a [`ScoreRequest`] through `backend`.
pub fn execute_score<B: ScoringBackend + ?Sized>(
    backend: &B,
    schema: &Schema,
    catalog: Option<&Catalog>,
    req: &ScoreRequest,
) -> Result<f64, RequestError> {
    let feats = resolve_feats(schema, catalog, req)?;
    Ok(backend.score_feats(&feats))
}

/// Validates a [`TopNRequest`] against the catalog: user id, explicit
/// exclusions, and any explicit candidate list. Returns the user's
/// resolved feature template — the evidence of validity the scoring
/// backends consume instead of re-checking the user id.
fn validate_topn<'c>(catalog: &'c Catalog, req: &TopNRequest) -> Result<&'c [u32], RequestError> {
    let template = user_template(catalog, req.user)?;
    for &item in &req.exclude {
        check_item(catalog, item)?;
    }
    if let Some(candidates) = &req.candidates {
        for &item in candidates {
            check_item(catalog, item)?;
        }
    }
    Ok(template)
}

/// Fills `out` with the surviving candidates of a *validated* request:
/// the requested set (or the whole catalogue) minus the explicit
/// exclusions and — unless opted out — the user's training-time seen
/// items plus any `live` overlay items (interactions fed since the
/// snapshot was published; sorted ascending like a seen list). Order of
/// the surviving candidates is preserved.
fn fill_candidates(
    catalog: &Catalog,
    seen: Option<&SeenItems>,
    live: &[u32],
    req: &TopNRequest,
    out: &mut Vec<u32>,
) {
    out.clear();
    let seen_items: &[u32] = match (req.exclude_seen, seen) {
        (true, Some(seen)) => seen.items(req.user),
        _ => &[],
    };
    let live: &[u32] = if req.exclude_seen { live } else { &[] };
    // Explicit exclusion lists are tiny in practice; the seen and live
    // lists are sorted, so membership there is a binary search.
    let keep = |item: u32| {
        !req.exclude.contains(&item)
            && seen_items.binary_search(&item).is_err()
            && live.binary_search(&item).is_err()
    };
    match &req.candidates {
        Some(candidates) => out.extend(candidates.iter().copied().filter(|&i| keep(i))),
        None => out.extend((0..catalog.n_items() as u32).filter(|&i| keep(i))),
    }
}

/// Fills `out` with the sorted, deduplicated union of the request's
/// explicit exclusions, the user's seen items, and the `live` overlay —
/// the skip set the indexed retrieval path probes against (equivalent,
/// item for item, to the filtering of [`fill_candidates`] on a
/// whole-catalogue request).
fn fill_excluded(seen: Option<&SeenItems>, live: &[u32], req: &TopNRequest, out: &mut Vec<u32>) {
    out.clear();
    if req.exclude_seen {
        if let Some(seen) = seen {
            out.extend_from_slice(seen.items(req.user));
        }
        out.extend_from_slice(live);
    }
    out.extend_from_slice(&req.exclude);
    out.sort_unstable();
    out.dedup();
}

/// Validates a [`TopNRequest`] and resolves the candidate list: the
/// requested set (or the whole catalogue) minus the explicit exclusions
/// and — unless opted out — the user's training-time seen items. Order
/// of the surviving candidates is preserved.
pub fn resolve_candidates(
    catalog: &Catalog,
    seen: Option<&SeenItems>,
    req: &TopNRequest,
) -> Result<Vec<u32>, RequestError> {
    let _template = validate_topn(catalog, req)?;
    let mut out = Vec::new();
    fill_candidates(catalog, seen, &[], req, &mut out);
    Ok(out)
}

/// Validates and runs a [`TopNRequest`] through `backend`, returning
/// `(item, score)` pairs **in candidate order** (no sort, `n` ignored) —
/// the shape the leave-one-out evaluation protocols consume.
pub fn execute_candidate_scores<B: ScoringBackend + ?Sized>(
    backend: &B,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    req: &TopNRequest,
    default_par: Parallelism,
) -> Result<Vec<(u32, f64)>, RequestError> {
    execute_candidate_scores_live(backend, catalog, seen, &[], req, default_par)
}

/// [`execute_candidate_scores`] with a live seen overlay: `live` is the
/// user's sorted overlay items (interactions fed since the snapshot was
/// published), excluded under the same `exclude_seen` semantics as the
/// snapshot seen sets. The [`crate::ModelServer`] read paths route here.
pub fn execute_candidate_scores_live<B: ScoringBackend + ?Sized>(
    backend: &B,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    live: &[u32],
    req: &TopNRequest,
    default_par: Parallelism,
) -> Result<Vec<(u32, f64)>, RequestError> {
    let catalog = catalog.ok_or(RequestError::MissingCatalog)?;
    let template = validate_topn(catalog, req)?;
    let mut candidates = Vec::new();
    fill_candidates(catalog, seen, live, req, &mut candidates);
    let par = req.par.unwrap_or(default_par);
    let scores = backend.candidate_scores(catalog, template, &candidates, par);
    Ok(candidates.into_iter().zip(scores).collect())
}

/// Request-scoped scratch reused across the top-n hot path: the
/// resolved candidate list is `O(catalogue)` and rebuilding its backing
/// allocation on every request dominated steady-state serving's
/// allocator traffic. One scratch per thread; `mem::take` keeps a
/// re-entrant caller (a backend that itself executes requests) safe —
/// the inner call simply allocates fresh buffers.
#[derive(Default)]
struct TopNScratch {
    candidates: Vec<u32>,
    excluded: Vec<u32>,
}

thread_local! {
    static TOPN_SCRATCH: RefCell<TopNScratch> = RefCell::new(TopNScratch::default());
}

/// Validates and runs a [`TopNRequest`] through `backend`: the top
/// `req.n` candidates, best first, under the deterministic retrieval
/// order ([`gmlfm_serve::rank_cmp`]: score descending, ties broken by ascending item
/// id).
///
/// Whole-catalogue requests that don't pin
/// [`RetrievalStrategy::Exact`] are first offered to
/// [`ScoringBackend::select_top_n_indexed`] (the IVF path of indexed
/// snapshots — approximate candidate set, exact scores); everything
/// else, and any request the index declines, goes through
/// [`ScoringBackend::select_top_n`] — sharded bounded heaps for frozen
/// snapshots — never a full sort. Exclusion filtering (explicit lists
/// and seen items) runs **before** selection on both paths, so excluded
/// items never occupy result slots. `req.n = 0` yields an empty
/// ranking; `req.n` beyond the surviving candidate count yields every
/// survivor.
pub fn execute_topn<B: ScoringBackend + ?Sized>(
    backend: &B,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    req: &TopNRequest,
    default_par: Parallelism,
) -> Result<Vec<(u32, f64)>, RequestError> {
    execute_topn_live(backend, catalog, seen, &[], req, default_par)
}

/// [`execute_topn`] with a live seen overlay: `live` is the user's
/// sorted overlay items (interactions fed since the snapshot was
/// published), excluded — on both the indexed and the exact path —
/// under the same `exclude_seen` semantics as the snapshot seen sets.
/// This is how a fed event leaves a user's recommendations *before* any
/// retrain publishes.
pub fn execute_topn_live<B: ScoringBackend + ?Sized>(
    backend: &B,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    live: &[u32],
    req: &TopNRequest,
    default_par: Parallelism,
) -> Result<Vec<(u32, f64)>, RequestError> {
    let catalog = catalog.ok_or(RequestError::MissingCatalog)?;
    let template = validate_topn(catalog, req)?;
    let par = req.par.unwrap_or(default_par);
    let precision = req.precision.unwrap_or_else(|| backend.default_precision());
    let mut scratch = TOPN_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));

    // Indexed retrieval: only whole-catalogue requests are eligible —
    // an explicit candidate list already *is* a (usually small)
    // candidate set, and scanning it exactly is both cheaper and what
    // the request's order-sensitive semantics require.
    let indexed = if req.candidates.is_none() && req.strategy != Some(RetrievalStrategy::Exact) {
        let nprobe = match req.strategy {
            Some(RetrievalStrategy::Ivf { nprobe }) => nprobe,
            _ => None,
        };
        fill_excluded(seen, live, req, &mut scratch.excluded);
        backend.select_top_n_indexed(catalog, template, req.n, nprobe, &scratch.excluded, precision, par)
    } else {
        None
    };
    let value = match indexed {
        Some(value) => value,
        None => {
            fill_candidates(catalog, seen, live, req, &mut scratch.candidates);
            backend.select_top_n_prec(catalog, template, &scratch.candidates, req.n, precision, par)
        }
    };

    TOPN_SCRATCH.with(|s| *s.borrow_mut() = scratch);
    Ok(value)
}

/// Fans a [`BatchRequest`] across the pool. Each sub-request validates
/// and fails independently; top-n sub-requests default to serial inside
/// the batch (the batch itself is the fan-out) unless they carry an
/// explicit [`TopNRequest::parallelism`].
pub fn execute_batch<B: ScoringBackend + Sync + ?Sized>(
    backend: &B,
    schema: &Schema,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    req: &BatchRequest,
) -> Vec<Result<Reply, RequestError>> {
    execute_batch_live(backend, schema, catalog, seen, None, req)
}

/// [`execute_batch`] with a live seen overlay: `live` is a point-in-time
/// copy of the server's overlay table, consulted per sub-request user
/// under the same `exclude_seen` semantics as the snapshot seen sets.
pub fn execute_batch_live<B: ScoringBackend + Sync + ?Sized>(
    backend: &B,
    schema: &Schema,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    live: Option<&SeenItems>,
    req: &BatchRequest,
) -> Vec<Result<Reply, RequestError>> {
    let par = req.par.unwrap_or_else(Parallelism::auto);
    gmlfm_par::par_map(par, &req.requests, |request| match request {
        Request::Score(score) => execute_score(backend, schema, catalog, score).map(Reply::Score),
        Request::TopN(topn) => {
            let user_live = live.map(|l| l.items(topn.user)).unwrap_or(&[]);
            execute_topn_live(backend, catalog, seen, user_live, topn, Parallelism::serial()).map(Reply::TopN)
        }
    })
}

/// Resolves a user id to its feature template, or the typed error. The
/// returned slice is the *evidence* that the user is in range — passing
/// it (rather than the raw id) downstream means the scoring paths never
/// need a second, panicking lookup.
fn user_template(catalog: &Catalog, user: u32) -> Result<&[u32], RequestError> {
    catalog
        .template(user)
        .ok_or(RequestError::UnknownUser { user, n_users: catalog.n_users() })
}

/// Resolves an item id to its feature group, or the typed error — the
/// item-side counterpart of [`user_template`].
fn item_group(catalog: &Catalog, item: u32) -> Result<&[u32], RequestError> {
    catalog
        .item_features(item)
        .ok_or(RequestError::UnknownItem { item, n_items: catalog.n_items() })
}

fn check_item(catalog: &Catalog, item: u32) -> Result<(), RequestError> {
    if (item as usize) < catalog.n_items() {
        Ok(())
    } else {
        Err(RequestError::UnknownItem { item, n_items: catalog.n_items() })
    }
}
