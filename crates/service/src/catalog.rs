//! Serving-side feature tables: the [`Catalog`] that turns `(user,
//! item)` ids into one-hot feature vectors, and the [`SeenItems`] sets
//! behind default seen-item exclusion in top-n requests.

use gmlfm_data::{Dataset, FieldKind, FieldMask};
use serde::{json, Deserialize, Serialize};

/// The item/user feature tables a ranking request needs: per-user context
/// templates and per-item candidate feature groups, mask-resolved into
/// global one-hot indices.
///
/// A catalog is what turns a frozen model into a *servable* recommender:
/// `top_n(user)` needs to enumerate every item's feature group (item id +
/// item attributes) and splice it into the user's template — exactly the
/// [`gmlfm_serve::TopNRanker`] workflow — without the training-side
/// [`Dataset`] in memory.
///
/// The item table is stored as one flat row-major `u32` array
/// (`n_items × item_slots.len()`): the block scan reads one item group
/// per candidate, and a flat table makes that a sequential slice read
/// instead of a pointer chase through a `Vec<Vec<u32>>`. The JSON wire
/// format keeps the original array-of-arrays shape (hand-written impls
/// below), so artifacts are unaffected by the layout.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Template positions that carry item-side values.
    item_slots: Vec<usize>,
    /// Per-user full feature template (item slots hold item 0's values
    /// until spliced).
    user_templates: Vec<Vec<u32>>,
    /// Per-item values for the item slots, in `item_slots` order; flat
    /// row-major, `item_slots.len()` values per item.
    item_feats: Vec<u32>,
    /// Item count — not derivable from `item_feats` when there are no
    /// item slots (rows are zero-width).
    n_items: usize,
}

impl Catalog {
    /// Assembles a catalog from raw tables (custom pipelines, tests).
    /// `user_templates` must all share one width, `item_slots` must index
    /// into that width, and every `item_feats` group must have one value
    /// per item slot.
    ///
    /// # Panics
    /// Panics when the tables are inconsistent with each other.
    pub fn new(item_slots: Vec<usize>, user_templates: Vec<Vec<u32>>, item_feats: Vec<Vec<u32>>) -> Self {
        if let Some(first) = user_templates.first() {
            let width = first.len();
            assert!(
                user_templates.iter().all(|t| t.len() == width),
                "Catalog: user templates differ in width"
            );
            assert!(item_slots.iter().all(|&s| s < width), "Catalog: item slot outside the template");
        }
        assert!(
            item_feats.iter().all(|g| g.len() == item_slots.len()),
            "Catalog: item group width != item slot count"
        );
        let n_items = item_feats.len();
        let item_feats = item_feats.into_iter().flatten().collect();
        Self { item_slots, user_templates, item_feats, n_items }
    }

    /// Extracts the serving catalog from a dataset under an attribute
    /// mask.
    pub fn from_dataset(dataset: &Dataset, mask: &FieldMask) -> Self {
        let item_slots = item_side_slots(dataset, mask);
        let user_templates: Vec<Vec<u32>> =
            (0..dataset.n_users).map(|u| dataset.feats(u as u32, 0, mask)).collect();
        let mut item_feats = Vec::with_capacity(dataset.n_items * item_slots.len());
        for i in 0..dataset.n_items {
            let full = dataset.feats(0, i as u32, mask);
            item_feats.extend(item_slots.iter().map(|&s| full[s]));
        }
        Self { item_slots, user_templates, item_feats, n_items: dataset.n_items }
    }

    /// Number of users in the catalog.
    pub fn n_users(&self) -> usize {
        self.user_templates.len()
    }

    /// Number of items in the catalog.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Template positions that vary per candidate item.
    pub fn item_slots(&self) -> &[usize] {
        &self.item_slots
    }

    /// The user's full feature template (item slots filled with item 0).
    pub fn template(&self, user: u32) -> Option<&[u32]> {
        self.user_templates.get(user as usize).map(Vec::as_slice)
    }

    /// The item's feature-group values, in [`Catalog::item_slots`] order.
    pub fn item_features(&self, item: u32) -> Option<&[u32]> {
        let (i, w) = (item as usize, self.item_slots.len());
        (i < self.n_items).then(|| &self.item_feats[i * w..(i + 1) * w])
    }

    /// The full feature vector for a `(user, item)` pair — the user's
    /// template with the item group spliced in.
    pub fn feats(&self, user: u32, item: u32) -> Option<Vec<u32>> {
        Some(self.splice(self.template(user)?, self.item_features(item)?))
    }

    /// Splices an item feature group (in [`Catalog::item_slots`] order)
    /// into a resolved user template. Infallible by construction: both
    /// slices came out of this catalog's own tables, so the slot indices
    /// are in range for the template width.
    pub fn splice(&self, template: &[u32], item_feats: &[u32]) -> Vec<u32> {
        let mut out = template.to_vec();
        for (&slot, &f) in self.item_slots.iter().zip(item_feats) {
            out[slot] = f;
        }
        out
    }

    /// The largest feature index any template or item group carries
    /// (`None` for an empty catalog) — what server construction checks
    /// against the model's one-hot dimension.
    pub fn max_feature(&self) -> Option<u32> {
        self.user_templates
            .iter()
            .flat_map(|row| row.iter())
            .chain(&self.item_feats)
            .copied()
            .max()
    }
}

/// The item-table view the IVF index builds from and scans with
/// ([`gmlfm_serve::IvfIndex`]).
impl gmlfm_serve::ItemFeatureSource for Catalog {
    fn item_count(&self) -> usize {
        self.n_items()
    }

    fn features_of(&self, item: u32) -> &[u32] {
        let (i, w) = (item as usize, self.item_slots.len());
        &self.item_feats[i * w..(i + 1) * w]
    }

    /// One pass over the flat item table (rectangular by construction,
    /// so no ragged check is needed). Called once per ranking request
    /// when the block scan materialises its dense delta tables — a read
    /// per item-group value, amortised over the scan it accelerates.
    fn slot_ranges(&self) -> Option<Vec<(u32, u32)>> {
        let w = self.item_slots.len();
        if self.n_items == 0 {
            return None;
        }
        if w == 0 {
            return Some(Vec::new());
        }
        let mut groups = self.item_feats.chunks_exact(w);
        let mut ranges: Vec<(u32, u32)> = groups.next()?.iter().map(|&f| (f, f)).collect();
        for group in groups {
            for (r, &f) in ranges.iter_mut().zip(group) {
                r.0 = r.0.min(f);
                r.1 = r.1.max(f);
            }
        }
        Some(ranges)
    }
}

/// Wire-compatible with the former derived impl over nested
/// `Vec<Vec<u32>>` item groups: the flat table is re-chunked into an
/// array of per-item arrays, so artifacts written before and after the
/// flat-layout change are byte-identical.
impl Serialize for Catalog {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"item_slots\":");
        self.item_slots.serialize_json(out);
        out.push_str(",\"user_templates\":");
        self.user_templates.serialize_json(out);
        out.push_str(",\"item_feats\":[");
        let w = self.item_slots.len();
        for i in 0..self.n_items {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, f) in self.item_feats[i * w..(i + 1) * w].iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                f.serialize_json(out);
            }
            out.push(']');
        }
        out.push_str("]}");
    }
}

impl Deserialize for Catalog {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let item_slots: Vec<usize> = json::field(v, "item_slots")?;
        let user_templates: Vec<Vec<u32>> = json::field(v, "user_templates")?;
        let groups: Vec<Vec<u32>> = json::field(v, "item_feats")?;
        let w = item_slots.len();
        if let Some(bad) = groups.iter().find(|g| g.len() != w) {
            return Err(json::Error::new(format!(
                "catalog item group has {} values, expected {w} (one per item slot)",
                bad.len()
            )));
        }
        let n_items = groups.len();
        let item_feats = groups.into_iter().flatten().collect();
        Ok(Self { item_slots, user_templates, item_feats, n_items })
    }
}

/// Positions (within the active fields of `mask`) that carry item-side
/// values and therefore change between ranking candidates.
fn item_side_slots(dataset: &Dataset, mask: &FieldMask) -> Vec<usize> {
    dataset
        .schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(field, _)| mask.is_active(*field))
        .map(|(_, f)| f.kind)
        .enumerate()
        .filter(|(_, kind)| !matches!(kind, FieldKind::User | FieldKind::UserAttr))
        .map(|(slot, _)| slot)
        .collect()
}

/// Per-user sets of items interacted with during training, backing the
/// seen-item exclusion that [`crate::TopNRequest`] applies by default.
///
/// Stored as one sorted, deduplicated item list per user; membership is a
/// binary search. Users outside the recorded range simply have an empty
/// seen set, so a catalog larger than the training population degrades
/// gracefully.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeenItems {
    /// Sorted, deduplicated seen items per user id.
    per_user: Vec<Vec<u32>>,
}

impl SeenItems {
    /// Builds the seen sets, sorting and deduplicating each user's list.
    pub fn new(mut per_user: Vec<Vec<u32>>) -> Self {
        for items in &mut per_user {
            items.sort_unstable();
            items.dedup();
        }
        Self { per_user }
    }

    /// Number of users with a recorded (possibly empty) seen set.
    pub fn n_users(&self) -> usize {
        self.per_user.len()
    }

    /// Total number of `(user, item)` seen entries.
    pub fn total(&self) -> usize {
        self.per_user.iter().map(Vec::len).sum()
    }

    /// The user's seen items, sorted ascending (empty when the user is
    /// outside the recorded range).
    pub fn items(&self, user: u32) -> &[u32] {
        self.per_user.get(user as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `user` interacted with `item` during training.
    pub fn contains(&self, user: u32, item: u32) -> bool {
        self.items(user).binary_search(&item).is_ok()
    }

    /// Records one `(user, item)` interaction in place, growing the
    /// per-user table as needed and keeping the user's list sorted and
    /// deduplicated. Returns whether the entry was newly inserted.
    ///
    /// Deterministic: the resulting table depends only on the *set* of
    /// recorded entries, never on insertion order — `insert`ing
    /// incrementally is bitwise-equal to rebuilding via
    /// [`SeenItems::new`] from the union (proptest-pinned).
    pub fn insert(&mut self, user: u32, item: u32) -> bool {
        let idx = user as usize;
        if idx >= self.per_user.len() {
            self.per_user.resize_with(idx + 1, Vec::new);
        }
        let items = &mut self.per_user[idx];
        match items.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                items.insert(pos, item);
                true
            }
        }
    }

    /// Merges `items` (any order, duplicates allowed) into one user's
    /// seen set in place, preserving the sorted/deduplicated invariant.
    pub fn merge_user(&mut self, user: u32, items: &[u32]) {
        if items.is_empty() {
            return;
        }
        let idx = user as usize;
        if idx >= self.per_user.len() {
            self.per_user.resize_with(idx + 1, Vec::new);
        }
        let row = &mut self.per_user[idx];
        row.extend_from_slice(items);
        row.sort_unstable();
        row.dedup();
    }

    /// Merges every entry of `other` into `self` in place — the
    /// set-union of the two tables, sorted and deduplicated per user.
    pub fn merge(&mut self, other: &SeenItems) {
        for (user, items) in other.per_user.iter().enumerate() {
            self.merge_user(user as u32, items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_items_sorts_dedups_and_answers_membership() {
        let seen = SeenItems::new(vec![vec![5, 1, 5, 3], vec![]]);
        assert_eq!(seen.n_users(), 2);
        assert_eq!(seen.items(0), &[1, 3, 5]);
        assert_eq!(seen.total(), 3);
        assert!(seen.contains(0, 3));
        assert!(!seen.contains(0, 2));
        assert!(!seen.contains(1, 3));
        // Out-of-range users have an empty seen set, not a panic.
        assert_eq!(seen.items(9), &[] as &[u32]);
        assert!(!seen.contains(9, 0));
    }

    #[test]
    fn insert_and_merge_keep_the_sorted_dedup_invariant() {
        let mut seen = SeenItems::new(vec![vec![2]]);
        // New entry past the recorded range grows the table.
        assert!(seen.insert(2, 7));
        assert_eq!(seen.n_users(), 3);
        assert_eq!(seen.items(1), &[] as &[u32]);
        // Re-inserting is a no-op, not a duplicate.
        assert!(!seen.insert(2, 7));
        assert!(seen.insert(0, 1));
        assert_eq!(seen.items(0), &[1, 2]);

        let mut incremental = seen.clone();
        incremental.merge_user(0, &[9, 1, 9, 0]);
        assert_eq!(incremental.items(0), &[0, 1, 2, 9]);

        let other = SeenItems::new(vec![vec![9, 0, 9], vec![4]]);
        seen.merge(&other);
        assert_eq!(seen.items(0), &[0, 1, 2, 9]);
        assert_eq!(seen.items(1), &[4]);
        assert_eq!(seen.items(2), &[7]);
    }

    #[test]
    fn hand_built_catalog_splices_like_the_dataset_one() {
        // user field (3 users, offset 0), item field (4 items, offset 3).
        let catalog = Catalog::new(
            vec![1],
            (0..3u32).map(|u| vec![u, 3]).collect(),
            (0..4u32).map(|i| vec![3 + i]).collect(),
        );
        assert_eq!(catalog.n_users(), 3);
        assert_eq!(catalog.n_items(), 4);
        assert_eq!(catalog.feats(2, 3), Some(vec![2, 6]));
        assert_eq!(catalog.feats(3, 0), None);
        assert_eq!(catalog.feats(0, 4), None);
        assert_eq!(catalog.max_feature(), Some(6));
    }

    #[test]
    #[should_panic(expected = "item slot outside")]
    fn catalog_rejects_out_of_template_slots() {
        let _ = Catalog::new(vec![2], vec![vec![0, 1]], vec![vec![1]]);
    }
}
