//! Serving-side feature tables: the [`Catalog`] that turns `(user,
//! item)` ids into one-hot feature vectors, and the [`SeenItems`] sets
//! behind default seen-item exclusion in top-n requests.

use gmlfm_data::{Dataset, FieldKind, FieldMask};
use serde::{Deserialize, Serialize};

/// The item/user feature tables a ranking request needs: per-user context
/// templates and per-item candidate feature groups, mask-resolved into
/// global one-hot indices.
///
/// A catalog is what turns a frozen model into a *servable* recommender:
/// `top_n(user)` needs to enumerate every item's feature group (item id +
/// item attributes) and splice it into the user's template — exactly the
/// [`gmlfm_serve::TopNRanker`] workflow — without the training-side
/// [`Dataset`] in memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    /// Template positions that carry item-side values.
    item_slots: Vec<usize>,
    /// Per-user full feature template (item slots hold item 0's values
    /// until spliced).
    user_templates: Vec<Vec<u32>>,
    /// Per-item values for the item slots, in `item_slots` order.
    item_feats: Vec<Vec<u32>>,
}

impl Catalog {
    /// Assembles a catalog from raw tables (custom pipelines, tests).
    /// `user_templates` must all share one width, `item_slots` must index
    /// into that width, and every `item_feats` group must have one value
    /// per item slot.
    ///
    /// # Panics
    /// Panics when the tables are inconsistent with each other.
    pub fn new(item_slots: Vec<usize>, user_templates: Vec<Vec<u32>>, item_feats: Vec<Vec<u32>>) -> Self {
        if let Some(first) = user_templates.first() {
            let width = first.len();
            assert!(
                user_templates.iter().all(|t| t.len() == width),
                "Catalog: user templates differ in width"
            );
            assert!(item_slots.iter().all(|&s| s < width), "Catalog: item slot outside the template");
        }
        assert!(
            item_feats.iter().all(|g| g.len() == item_slots.len()),
            "Catalog: item group width != item slot count"
        );
        Self { item_slots, user_templates, item_feats }
    }

    /// Extracts the serving catalog from a dataset under an attribute
    /// mask.
    pub fn from_dataset(dataset: &Dataset, mask: &FieldMask) -> Self {
        let item_slots = item_side_slots(dataset, mask);
        let user_templates: Vec<Vec<u32>> =
            (0..dataset.n_users).map(|u| dataset.feats(u as u32, 0, mask)).collect();
        let item_feats: Vec<Vec<u32>> = (0..dataset.n_items)
            .map(|i| {
                let full = dataset.feats(0, i as u32, mask);
                item_slots.iter().map(|&s| full[s]).collect()
            })
            .collect();
        Self { item_slots, user_templates, item_feats }
    }

    /// Number of users in the catalog.
    pub fn n_users(&self) -> usize {
        self.user_templates.len()
    }

    /// Number of items in the catalog.
    pub fn n_items(&self) -> usize {
        self.item_feats.len()
    }

    /// Template positions that vary per candidate item.
    pub fn item_slots(&self) -> &[usize] {
        &self.item_slots
    }

    /// The user's full feature template (item slots filled with item 0).
    pub fn template(&self, user: u32) -> Option<&[u32]> {
        self.user_templates.get(user as usize).map(Vec::as_slice)
    }

    /// The item's feature-group values, in [`Catalog::item_slots`] order.
    pub fn item_features(&self, item: u32) -> Option<&[u32]> {
        self.item_feats.get(item as usize).map(Vec::as_slice)
    }

    /// The full feature vector for a `(user, item)` pair — the user's
    /// template with the item group spliced in.
    pub fn feats(&self, user: u32, item: u32) -> Option<Vec<u32>> {
        Some(self.splice(self.template(user)?, self.item_features(item)?))
    }

    /// Splices an item feature group (in [`Catalog::item_slots`] order)
    /// into a resolved user template. Infallible by construction: both
    /// slices came out of this catalog's own tables, so the slot indices
    /// are in range for the template width.
    pub fn splice(&self, template: &[u32], item_feats: &[u32]) -> Vec<u32> {
        let mut out = template.to_vec();
        for (&slot, &f) in self.item_slots.iter().zip(item_feats) {
            out[slot] = f;
        }
        out
    }

    /// The largest feature index any template or item group carries
    /// (`None` for an empty catalog) — what server construction checks
    /// against the model's one-hot dimension.
    pub fn max_feature(&self) -> Option<u32> {
        self.user_templates
            .iter()
            .chain(&self.item_feats)
            .flat_map(|row| row.iter().copied())
            .max()
    }
}

/// The item-table view the IVF index builds from and scans with
/// ([`gmlfm_serve::IvfIndex`]).
impl gmlfm_serve::ItemFeatureSource for Catalog {
    fn item_count(&self) -> usize {
        self.n_items()
    }

    fn features_of(&self, item: u32) -> &[u32] {
        &self.item_feats[item as usize]
    }
}

/// Positions (within the active fields of `mask`) that carry item-side
/// values and therefore change between ranking candidates.
fn item_side_slots(dataset: &Dataset, mask: &FieldMask) -> Vec<usize> {
    dataset
        .schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(field, _)| mask.is_active(*field))
        .map(|(_, f)| f.kind)
        .enumerate()
        .filter(|(_, kind)| !matches!(kind, FieldKind::User | FieldKind::UserAttr))
        .map(|(slot, _)| slot)
        .collect()
}

/// Per-user sets of items interacted with during training, backing the
/// seen-item exclusion that [`crate::TopNRequest`] applies by default.
///
/// Stored as one sorted, deduplicated item list per user; membership is a
/// binary search. Users outside the recorded range simply have an empty
/// seen set, so a catalog larger than the training population degrades
/// gracefully.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeenItems {
    /// Sorted, deduplicated seen items per user id.
    per_user: Vec<Vec<u32>>,
}

impl SeenItems {
    /// Builds the seen sets, sorting and deduplicating each user's list.
    pub fn new(mut per_user: Vec<Vec<u32>>) -> Self {
        for items in &mut per_user {
            items.sort_unstable();
            items.dedup();
        }
        Self { per_user }
    }

    /// Number of users with a recorded (possibly empty) seen set.
    pub fn n_users(&self) -> usize {
        self.per_user.len()
    }

    /// Total number of `(user, item)` seen entries.
    pub fn total(&self) -> usize {
        self.per_user.iter().map(Vec::len).sum()
    }

    /// The user's seen items, sorted ascending (empty when the user is
    /// outside the recorded range).
    pub fn items(&self, user: u32) -> &[u32] {
        self.per_user.get(user as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `user` interacted with `item` during training.
    pub fn contains(&self, user: u32, item: u32) -> bool {
        self.items(user).binary_search(&item).is_ok()
    }

    /// Records one `(user, item)` interaction in place, growing the
    /// per-user table as needed and keeping the user's list sorted and
    /// deduplicated. Returns whether the entry was newly inserted.
    ///
    /// Deterministic: the resulting table depends only on the *set* of
    /// recorded entries, never on insertion order — `insert`ing
    /// incrementally is bitwise-equal to rebuilding via
    /// [`SeenItems::new`] from the union (proptest-pinned).
    pub fn insert(&mut self, user: u32, item: u32) -> bool {
        let idx = user as usize;
        if idx >= self.per_user.len() {
            self.per_user.resize_with(idx + 1, Vec::new);
        }
        let items = &mut self.per_user[idx];
        match items.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                items.insert(pos, item);
                true
            }
        }
    }

    /// Merges `items` (any order, duplicates allowed) into one user's
    /// seen set in place, preserving the sorted/deduplicated invariant.
    pub fn merge_user(&mut self, user: u32, items: &[u32]) {
        if items.is_empty() {
            return;
        }
        let idx = user as usize;
        if idx >= self.per_user.len() {
            self.per_user.resize_with(idx + 1, Vec::new);
        }
        let row = &mut self.per_user[idx];
        row.extend_from_slice(items);
        row.sort_unstable();
        row.dedup();
    }

    /// Merges every entry of `other` into `self` in place — the
    /// set-union of the two tables, sorted and deduplicated per user.
    pub fn merge(&mut self, other: &SeenItems) {
        for (user, items) in other.per_user.iter().enumerate() {
            self.merge_user(user as u32, items);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_items_sorts_dedups_and_answers_membership() {
        let seen = SeenItems::new(vec![vec![5, 1, 5, 3], vec![]]);
        assert_eq!(seen.n_users(), 2);
        assert_eq!(seen.items(0), &[1, 3, 5]);
        assert_eq!(seen.total(), 3);
        assert!(seen.contains(0, 3));
        assert!(!seen.contains(0, 2));
        assert!(!seen.contains(1, 3));
        // Out-of-range users have an empty seen set, not a panic.
        assert_eq!(seen.items(9), &[] as &[u32]);
        assert!(!seen.contains(9, 0));
    }

    #[test]
    fn insert_and_merge_keep_the_sorted_dedup_invariant() {
        let mut seen = SeenItems::new(vec![vec![2]]);
        // New entry past the recorded range grows the table.
        assert!(seen.insert(2, 7));
        assert_eq!(seen.n_users(), 3);
        assert_eq!(seen.items(1), &[] as &[u32]);
        // Re-inserting is a no-op, not a duplicate.
        assert!(!seen.insert(2, 7));
        assert!(seen.insert(0, 1));
        assert_eq!(seen.items(0), &[1, 2]);

        let mut incremental = seen.clone();
        incremental.merge_user(0, &[9, 1, 9, 0]);
        assert_eq!(incremental.items(0), &[0, 1, 2, 9]);

        let other = SeenItems::new(vec![vec![9, 0, 9], vec![4]]);
        seen.merge(&other);
        assert_eq!(seen.items(0), &[0, 1, 2, 9]);
        assert_eq!(seen.items(1), &[4]);
        assert_eq!(seen.items(2), &[7]);
    }

    #[test]
    fn hand_built_catalog_splices_like_the_dataset_one() {
        // user field (3 users, offset 0), item field (4 items, offset 3).
        let catalog = Catalog::new(
            vec![1],
            (0..3u32).map(|u| vec![u, 3]).collect(),
            (0..4u32).map(|i| vec![3 + i]).collect(),
        );
        assert_eq!(catalog.n_users(), 3);
        assert_eq!(catalog.n_items(), 4);
        assert_eq!(catalog.feats(2, 3), Some(vec![2, 6]));
        assert_eq!(catalog.feats(3, 0), None);
        assert_eq!(catalog.feats(0, 4), None);
        assert_eq!(catalog.max_feature(), Some(6));
    }

    #[test]
    #[should_panic(expected = "item slot outside")]
    fn catalog_rejects_out_of_template_slots() {
        let _ = Catalog::new(vec![2], vec![vec![0, 1]], vec![vec![1]]);
    }
}
