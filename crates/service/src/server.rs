//! The shared, hot-swappable model handle.
//!
//! [`ModelServer`] is the serving process's front door: a cheap-to-clone
//! (`Clone + Send + Sync`) handle that any number of request threads
//! share, answering the typed protocol of [`crate::protocol`] against a
//! single *model snapshot* — schema + frozen matrices + catalog + seen
//! sets — held behind an atomic pointer.
//!
//! ## Hot swap, without blocking readers
//!
//! [`ModelServer::swap`] installs a newly trained (or newly loaded)
//! snapshot mid-traffic: writers serialise on a mutex, readers never
//! block — a request pins the current snapshot with **one atomic load**
//! and computes its whole response against it, so every [`Response`] is
//! consistent with exactly one generation even while swaps race it. The
//! vendored dependency set has no `arc-swap`, so the slot is built from
//! `std` atomics in the same spirit as `gmlfm-par`'s pool internals:
//! installed snapshots are retained (append-only) until the last handle
//! drops, which is what makes the readers' raw-pointer loads sound
//! without reference counting or epoch schemes. A model refresh is a
//! rare, heavyweight event (retraining cadence, not request cadence), so
//! retaining superseded generations — observable via
//! [`ModelServer::retained`] — trades a few megabytes for wait-free
//! reads on the hot path.
//!
//! Swaps are validated: the incoming snapshot must carry a schema
//! **identical** to the serving one (field names, cardinalities and
//! kinds), so every in-flight and future request keeps meaning the same
//! thing; a mismatch is a typed [`RequestError::SchemaMismatch`] and the
//! current generation keeps serving.

use crate::catalog::{Catalog, SeenItems};
use crate::error::RequestError;
use crate::exec::{self, IndexedModel};
use crate::protocol::{BatchRequest, Reply, Response, ScoreRequest, TopNRequest};
use gmlfm_data::Schema;
use gmlfm_par::Parallelism;
use gmlfm_serve::{FrozenModel, IvfIndex};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Everything one model generation serves: the one-hot schema requests
/// are validated against, the frozen matrices that score, and the
/// optional catalog/seen tables behind `(user, item)` and top-n
/// requests.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The one-hot feature schema (validation + cold-start resolution).
    pub schema: Schema,
    /// The frozen serving model.
    pub frozen: FrozenModel,
    /// Serving catalog; `None` limits the server to feature-index
    /// requests.
    pub catalog: Option<Catalog>,
    /// Training-time seen sets backing default seen-item exclusion;
    /// `None` (e.g. a pre-seen-sets artifact) excludes nothing.
    pub seen: Option<SeenItems>,
    /// IVF retrieval index over the catalog
    /// ([`gmlfm_serve::IvfIndex`]); `None` serves every top-n request
    /// through the exact sharded-heap path. Validated against the
    /// frozen model and catalog at install time.
    pub index: Option<IvfIndex>,
}

/// One installed generation.
struct State {
    generation: u64,
    snap: ModelSnapshot,
}

/// The shared slot: the current state pointer plus the append-only store
/// that keeps every installed state alive for the readers.
///
/// States are heap-allocated with [`Box::into_raw`] and held as raw
/// pointers *only* — never as `Box` values — because moving a `Box`
/// (into the vector, or when the vector reallocates) retags its unique
/// ownership and would invalidate every pointer previously derived from
/// it under the aliasing rules. Raw pointers carry no such tag: they
/// stay valid until the matching [`Box::from_raw`] in [`Slot::drop`].
struct Slot {
    /// Always points at a `State` allocation recorded in `states`.
    current: AtomicPtr<State>,
    /// Every state ever installed, in generation order. Append-only:
    /// entries are never freed while the slot lives, which is what
    /// keeps `current`'s target valid for lock-free readers.
    states: Mutex<Vec<*mut State>>,
    /// The **live seen overlay**: per-user sorted, deduplicated items
    /// recorded via [`ModelServer::record_seen`] since the server was
    /// created. Snapshots are immutable (that is what makes the
    /// wait-free read path sound), so freshly fed interactions land
    /// here instead; the read paths union this table with the pinned
    /// snapshot's seen sets under the same `exclude_seen` semantics.
    /// Lock holds are a few comparisons — never a retrain, never a
    /// scan — so readers are delayed by at most one tiny critical
    /// section, not blocked behind training.
    overlay: Mutex<Vec<Vec<u32>>>,
}

impl Slot {
    /// Locks the append-only state table, recovering from poisoning:
    /// every mutation under this lock is a single `Vec::push`, so a
    /// panicking writer cannot leave the table half-updated and the
    /// poison flag carries no information worth propagating as a panic
    /// on the request path.
    fn lock_states(&self) -> std::sync::MutexGuard<'_, Vec<*mut State>> {
        self.states.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Locks the live seen overlay, recovering from poisoning for the
    /// same reason as [`Slot::lock_states`]: every mutation is a single
    /// sorted insert, so no invariant can be torn mid-update.
    fn lock_overlay(&self) -> std::sync::MutexGuard<'_, Vec<Vec<u32>>> {
        self.overlay.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

// SAFETY: the raw pointers are uniquely owned by the slot (created by
// `Box::into_raw`, freed only in `Drop`), and `State` itself is
// `Send + Sync`; the pointers are just the slot's way of not holding a
// movable `Box`.
unsafe impl Send for Slot {}
// SAFETY: same ownership argument as `Send` above — concurrent readers
// only ever turn the pointers back into shared `&State` borrows (the
// pointees are immutable after publication and `State: Sync`), and the
// pointer tables themselves are guarded by the atomic slot and mutex.
unsafe impl Sync for Slot {}

impl Drop for Slot {
    fn drop(&mut self) {
        let states = self.states.get_mut().unwrap_or_else(|poison| poison.into_inner());
        for &ptr in states.iter() {
            // SAFETY: each pointer came from `Box::into_raw`, is freed
            // exactly once (here), and no reader can exist any more —
            // readers borrow a `ModelServer`, and the last one is gone
            // or this `Drop` would not run.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

/// A cloneable, thread-safe serving handle over a hot-swappable
/// [`ModelSnapshot`]. See the [module docs](self) for the swap
/// semantics.
#[derive(Clone)]
pub struct ModelServer {
    slot: Arc<Slot>,
}

impl ModelServer {
    /// Starts serving `snap` as generation 1. Fails with
    /// [`RequestError::SchemaMismatch`] when the snapshot is internally
    /// inconsistent (frozen dimension vs schema, catalog indices vs
    /// frozen dimension) — the same checks every later [`swap`] runs.
    ///
    /// [`swap`]: ModelServer::swap
    pub fn new(snap: ModelSnapshot) -> Result<Self, RequestError> {
        check_snapshot(&snap)?;
        let ptr = Box::into_raw(Box::new(State { generation: 1, snap }));
        Ok(Self {
            slot: Arc::new(Slot {
                current: AtomicPtr::new(ptr),
                states: Mutex::new(vec![ptr]),
                overlay: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The current snapshot and its generation, pinned by one atomic
    /// load — the pair is always mutually consistent, even mid-swap.
    pub fn snapshot(&self) -> (u64, &ModelSnapshot) {
        let state = self.state();
        (state.generation, &state.snap)
    }

    /// The generation currently serving (starts at 1, +1 per swap).
    pub fn generation(&self) -> u64 {
        self.state().generation
    }

    /// The schema of the current snapshot.
    pub fn schema(&self) -> &Schema {
        &self.state().snap.schema
    }

    /// The frozen model of the current snapshot.
    pub fn frozen(&self) -> &FrozenModel {
        &self.state().snap.frozen
    }

    /// The catalog of the current snapshot, when it carries one.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.state().snap.catalog.as_ref()
    }

    /// The seen sets of the current snapshot, when it carries them.
    pub fn seen(&self) -> Option<&SeenItems> {
        self.state().snap.seen.as_ref()
    }

    /// How many generations the slot retains (== the number of
    /// successful installs, including the first).
    pub fn retained(&self) -> usize {
        self.slot.lock_states().len()
    }

    /// Records a `(user, item)` interaction in the **live seen overlay**,
    /// so the item leaves the user's top-n recommendations *immediately*
    /// — before any retrain folds it into a published snapshot. The ids
    /// are validated against the current catalog (typed errors, never a
    /// panic); returns whether the entry was newly recorded, stamped
    /// with the generation it was validated against.
    ///
    /// The overlay survives swaps: a retrained snapshot is expected to
    /// carry the folded seen sets ([`SeenItems::merge`]), and the union
    /// applied on the read paths makes double-recording harmless.
    pub fn record_seen(&self, user: u32, item: u32) -> Result<Response<bool>, RequestError> {
        let state = self.state();
        let catalog = state.snap.catalog.as_ref().ok_or(RequestError::MissingCatalog)?;
        if user as usize >= catalog.n_users() {
            return Err(RequestError::UnknownUser { user, n_users: catalog.n_users() });
        }
        if item as usize >= catalog.n_items() {
            return Err(RequestError::UnknownItem { item, n_items: catalog.n_items() });
        }
        let mut overlay = self.slot.lock_overlay();
        let idx = user as usize;
        if idx >= overlay.len() {
            overlay.resize_with(idx + 1, Vec::new);
        }
        let value = match overlay[idx].binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                overlay[idx].insert(pos, item);
                true
            }
        };
        Ok(Response { generation: state.generation, value })
    }

    /// The user's live overlay items (sorted ascending; empty when none
    /// were recorded) — a clone, so the lock is released before scoring.
    fn live_seen(&self, user: u32) -> Vec<u32> {
        let overlay = self.slot.lock_overlay();
        overlay.get(user as usize).cloned().unwrap_or_default()
    }

    /// A point-in-time copy of the whole live seen overlay as a
    /// [`SeenItems`] table — what a retrain merges into the candidate
    /// snapshot's seen sets, and what checkpointing persists.
    pub fn overlay_seen(&self) -> SeenItems {
        let rows = self.slot.lock_overlay().clone();
        // Rows are maintained sorted/deduplicated, so this is a plain
        // move into the table (`SeenItems::new` re-sorting is a no-op).
        SeenItems::new(rows)
    }

    /// Installs a new snapshot mid-traffic and returns its generation.
    ///
    /// Readers are never blocked: in-flight requests finish against the
    /// generation they pinned; requests that start after the swap's
    /// atomic store see the new one. The snapshot must be schema-
    /// identical to the serving one and internally consistent, otherwise
    /// a typed [`RequestError`] is returned and nothing changes.
    pub fn swap(&self, snap: ModelSnapshot) -> Result<u64, RequestError> {
        check_snapshot(&snap)?;
        let mut states = self.slot.lock_states();
        // Writers are serialised by the lock, so `current` cannot move
        // under us here; readers may still load it concurrently.
        let current = self.state();
        check_schema_compatible(&current.snap.schema, &snap.schema)?;
        let generation = current.generation + 1;
        let ptr = Box::into_raw(Box::new(State { generation, snap }));
        states.push(ptr);
        // ORDERING: Release publishes the fully initialised `State` (and
        // its `states` record) to readers; pairs with the Acquire load
        // in `Slot`-dereferencing `state()`.
        self.slot.current.store(ptr, Ordering::Release);
        Ok(generation)
    }

    /// Answers a [`ScoreRequest`] against the current snapshot.
    pub fn score(&self, req: &ScoreRequest) -> Result<Response<f64>, RequestError> {
        let state = self.state();
        let value =
            exec::execute_score(&state.snap.frozen, &state.snap.schema, state.snap.catalog.as_ref(), req)?;
        Ok(Response { generation: state.generation, value })
    }

    /// Answers a [`TopNRequest`] against the current snapshot: `(item,
    /// score)` pairs, best first, ties broken by ascending item id.
    /// Retrieval is the sharded bounded-heap path — one
    /// [`gmlfm_serve::TopNRanker`] and size-`n` [`gmlfm_serve::TopNHeap`]
    /// per worker shard, merged deterministically — so a request over a
    /// million-item catalogue never sorts (or even materialises) the
    /// full score vector.
    pub fn top_n(&self, req: &TopNRequest) -> Result<Response<Vec<(u32, f64)>>, RequestError> {
        let state = self.state();
        let backend = IndexedModel { frozen: &state.snap.frozen, index: state.snap.index.as_ref() };
        let live = if req.exclude_seen { self.live_seen(req.user) } else { Vec::new() };
        let value = exec::execute_topn_live(
            &backend,
            state.snap.catalog.as_ref(),
            state.snap.seen.as_ref(),
            &live,
            req,
            Parallelism::auto(),
        )?;
        Ok(Response { generation: state.generation, value })
    }

    /// [`ModelServer::top_n`] without the final sort/truncation: `(item,
    /// score)` pairs in candidate order (`req.n` is ignored). This is
    /// the shape the leave-one-out evaluation protocols consume.
    pub fn candidate_scores(&self, req: &TopNRequest) -> Result<Response<Vec<(u32, f64)>>, RequestError> {
        let state = self.state();
        let live = if req.exclude_seen { self.live_seen(req.user) } else { Vec::new() };
        let value = exec::execute_candidate_scores_live(
            &state.snap.frozen,
            state.snap.catalog.as_ref(),
            state.snap.seen.as_ref(),
            &live,
            req,
            Parallelism::auto(),
        )?;
        Ok(Response { generation: state.generation, value })
    }

    /// Answers every sub-request of a [`BatchRequest`] against **one**
    /// snapshot, fanned across the pool. Malformed sub-requests fail
    /// individually; the batch itself always succeeds.
    pub fn batch(&self, req: &BatchRequest) -> Response<Vec<Result<Reply, RequestError>>> {
        let state = self.state();
        let backend = IndexedModel { frozen: &state.snap.frozen, index: state.snap.index.as_ref() };
        // One point-in-time overlay copy for the whole batch, so every
        // sub-request filters against the same live state.
        let live = if self.slot.lock_overlay().is_empty() { None } else { Some(self.overlay_seen()) };
        let value = exec::execute_batch_live(
            &backend,
            &state.snap.schema,
            state.snap.catalog.as_ref(),
            state.snap.seen.as_ref(),
            live.as_ref(),
            req,
        );
        Response { generation: state.generation, value }
    }

    /// The current state, by one `Acquire` load.
    fn state(&self) -> &State {
        // SAFETY: `current` always holds a pointer from `Box::into_raw`,
        // recorded in the append-only `states` vector *before* being
        // published with `Release` ordering (the `Acquire` load here
        // pairs with it). No `Box` value exists after `into_raw`, so
        // nothing ever moves or retags the allocation; it is freed only
        // in `Slot::drop`. The returned borrow is tied to `&self`,
        // which keeps the `Arc<Slot>` — and therefore
        // every retained state — alive.
        // ORDERING: Acquire pairs with the Release store in `swap` /
        // `new`, so the dereferenced `State` is fully initialised.
        unsafe { &*self.slot.current.load(Ordering::Acquire) }
    }
}

impl std::fmt::Debug for ModelServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (generation, snap) = self.snapshot();
        f.debug_struct("ModelServer")
            .field("generation", &generation)
            .field("n_features", &snap.frozen.n_features())
            .field("has_catalog", &snap.catalog.is_some())
            .field("has_seen", &snap.seen.is_some())
            .field("has_index", &snap.index.is_some())
            .finish_non_exhaustive()
    }
}

/// Internal-consistency checks every installed snapshot must pass, so
/// request execution can index the frozen tables without bounds panics.
fn check_snapshot(snap: &ModelSnapshot) -> Result<(), RequestError> {
    let n = snap.frozen.n_features();
    if snap.schema.total_dim() != n {
        return Err(RequestError::SchemaMismatch {
            reason: format!("schema dimension {} != frozen model's {n} features", snap.schema.total_dim()),
        });
    }
    if let Some(catalog) = &snap.catalog {
        if let Some(max) = catalog.max_feature() {
            if max as usize >= n {
                return Err(RequestError::SchemaMismatch {
                    reason: format!("catalog feature index {max} outside the model's {n} features"),
                });
            }
        }
    }
    if let Some(index) = &snap.index {
        let Some(catalog) = &snap.catalog else {
            return Err(RequestError::SchemaMismatch {
                reason: "snapshot carries a retrieval index but no catalog".into(),
            });
        };
        if let Err(reason) = index.compatible_with(&snap.frozen, catalog.n_items()) {
            return Err(RequestError::SchemaMismatch {
                reason: format!("retrieval index incompatible with the snapshot: {reason}"),
            });
        }
    }
    Ok(())
}

/// Schema-compatibility check for hot swaps: the new snapshot must mean
/// exactly what the old one meant, field for field.
fn check_schema_compatible(current: &Schema, incoming: &Schema) -> Result<(), RequestError> {
    if current.n_fields() != incoming.n_fields() {
        return Err(RequestError::SchemaMismatch {
            reason: format!("{} fields incoming vs {} serving", incoming.n_fields(), current.n_fields()),
        });
    }
    for (a, b) in current.fields().iter().zip(incoming.fields()) {
        if a.name != b.name || a.cardinality != b.cardinality || a.kind != b.kind {
            return Err(RequestError::SchemaMismatch {
                reason: format!(
                    "field '{}' ({:?}, cardinality {}) incoming as '{}' ({:?}, cardinality {})",
                    a.name, a.kind, a.cardinality, b.name, b.kind, b.cardinality
                ),
            });
        }
    }
    Ok(())
}
