//! The typed request/response protocol of the online serving API.
//!
//! Requests are plain data: they name *what* to score (an instance, raw
//! feature indices, a catalog pair, or a cold-start item + side
//! features), and the server validates them against the current model
//! snapshot's schema and catalog before any number is computed. Every
//! reply travels in a [`Response`] stamped with the generation of the
//! model snapshot that produced it, so a frontend can correlate answers
//! with hot-swaps.

use gmlfm_data::Instance;
use gmlfm_par::Parallelism;
use gmlfm_serve::{Precision, RetrievalStrategy};

use crate::error::RequestError;

/// What to score, in one of four addressing modes.
///
/// `Instance` and `Feats` address the model directly by one-hot feature
/// indices (validated against the schema's dimension); `Pair` resolves a
/// `(user, item)` through the serving catalog; `Cold` scores an item for
/// a user *never seen in training* — no user id exists, so the context is
/// given as named user-side field values instead (the paper's
/// side-feature design is exactly what makes this well-defined).
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreRequest {
    /// Score a prebuilt instance (its label is ignored).
    Instance(Instance),
    /// Score raw active feature indices.
    Feats(Vec<u32>),
    /// Score a catalog `(user, item)` pair: the user's stored template
    /// (id + side attributes) with the item's feature group spliced in.
    Pair {
        /// Catalog user id.
        user: u32,
        /// Catalog item id.
        item: u32,
    },
    /// Cold-start: score `item` for an out-of-catalog user described
    /// only by `(field name, value)` side features. Fields must be
    /// user-side (`User` / `UserAttr` kinds); item-side values come from
    /// the catalog via `item`.
    Cold {
        /// Catalog item id.
        item: u32,
        /// Named user-side field values, e.g. `("gender", 1)`.
        fields: Vec<(String, usize)>,
    },
}

impl ScoreRequest {
    /// Request from raw feature indices.
    pub fn feats(feats: impl Into<Vec<u32>>) -> Self {
        ScoreRequest::Feats(feats.into())
    }

    /// Request for a catalog `(user, item)` pair.
    pub fn pair(user: u32, item: u32) -> Self {
        ScoreRequest::Pair { user, item }
    }

    /// Cold-start request for an unseen user described by named
    /// user-side field values.
    pub fn cold(item: u32, fields: &[(&str, usize)]) -> Self {
        ScoreRequest::Cold {
            item,
            fields: fields.iter().map(|&(name, value)| (name.to_string(), value)).collect(),
        }
    }
}

/// Rank items for a catalog user and return the best `n`.
///
/// Defaults rank the whole catalogue and **exclude items the user
/// already interacted with in training** (when the served snapshot
/// carries seen sets) — the production recommendation default. Opt out
/// with [`TopNRequest::include_seen`]; restrict to a candidate subset
/// with [`TopNRequest::candidates`]; drop specific items with
/// [`TopNRequest::exclude`].
///
/// ## Ordering and size contract
///
/// Results are ranked under a **deterministic total order**: score
/// descending, equal scores broken by **ascending item id**
/// ([`gmlfm_serve::rank_cmp`]). The same order applies on every
/// execution path — the sharded bounded-heap retrieval of frozen
/// snapshots, the single-heap selection of live estimators, and the
/// full-sort references the parity tests pin against — so equal-score
/// ordering is a contract, not a sort-implementation accident.
///
/// `n = 0` yields an empty ranking; `n` larger than the surviving
/// candidate count (after exclusions and seen-item filtering, which run
/// *before* selection) yields every survivor. Duplicate ids in an
/// explicit candidate list are ranked as duplicates, exactly as a full
/// sort would keep them.
#[derive(Debug, Clone, PartialEq)]
pub struct TopNRequest {
    /// Catalog user id to rank for.
    pub user: u32,
    /// How many `(item, score)` pairs to return (best first).
    pub n: usize,
    /// Candidate items to rank; `None` ranks the whole catalogue.
    pub candidates: Option<Vec<u32>>,
    /// Items excluded regardless of the seen sets (already-shown items,
    /// out-of-stock, ...).
    pub exclude: Vec<u32>,
    /// Whether to exclude the user's training-time seen items
    /// (default `true`; a snapshot without seen sets excludes nothing).
    pub exclude_seen: bool,
    /// Per-request worker count; `None` uses the server's default
    /// ([`Parallelism::auto`] standalone, serial inside a batch).
    pub par: Option<Parallelism>,
    /// Candidate-selection strategy; `None` lets the snapshot decide
    /// (IVF when it carries an index and the request is eligible,
    /// exact otherwise). Scores are exact either way — see
    /// [`RetrievalStrategy`] for the approximation contract and the
    /// automatic exact-fallback conditions.
    pub strategy: Option<RetrievalStrategy>,
    /// Scoring-table precision; `None` uses the snapshot's configured
    /// default ([`Precision::F64`] unless the model was frozen with a
    /// lower-precision table). [`Precision::F32`] scans an `f32` table
    /// and returns approximate scores (~1e-6 relative); [`Precision::I8`]
    /// probes a quantized table and re-ranks the survivors exactly, so
    /// returned scores stay bitwise the `f64` model's. Requests that ask
    /// for a precision the snapshot has no table for are served exactly.
    pub precision: Option<Precision>,
}

impl TopNRequest {
    /// A whole-catalogue, exclude-seen request for `user`'s top `n`.
    pub fn new(user: u32, n: usize) -> Self {
        Self {
            user,
            n,
            candidates: None,
            exclude: Vec::new(),
            exclude_seen: true,
            par: None,
            strategy: None,
            precision: None,
        }
    }

    /// Restricts ranking to this candidate set (kept in the given order
    /// until the final sort).
    pub fn candidates(mut self, items: Vec<u32>) -> Self {
        self.candidates = Some(items);
        self
    }

    /// Excludes these items explicitly.
    pub fn exclude(mut self, items: Vec<u32>) -> Self {
        self.exclude = items;
        self
    }

    /// Opts out of the default seen-item exclusion.
    pub fn include_seen(mut self) -> Self {
        self.exclude_seen = false;
        self
    }

    /// Sets an explicit per-request worker count.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.par = Some(par);
        self
    }

    /// Pins the candidate-selection strategy instead of letting the
    /// snapshot decide ([`RetrievalStrategy::Exact`] forces the full
    /// sharded-heap scan even when an index is installed).
    pub fn strategy(mut self, strategy: RetrievalStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Pins the scoring-table precision instead of using the snapshot's
    /// default (see [`TopNRequest::precision`] for the accuracy
    /// contract of each level).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }
}

/// One request of either kind, for batching.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A scoring request.
    Score(ScoreRequest),
    /// A ranking request.
    TopN(TopNRequest),
}

/// The successful payload matching a [`Request`] variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Payload of a [`Request::Score`].
    Score(f64),
    /// Payload of a [`Request::TopN`]: `(item, score)` pairs, best first.
    TopN(Vec<(u32, f64)>),
}

/// Many requests answered against **one** model snapshot.
///
/// The batch is fanned across the `gmlfm-par` pool and every sub-request
/// is validated independently: one malformed request yields its own
/// [`crate::RequestError`] slot without failing the batch. All replies
/// share the single generation stamped on the enclosing [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The sub-requests, answered in order.
    pub requests: Vec<Request>,
    /// Worker count for the fan-out; `None` uses [`Parallelism::auto`].
    /// Top-n sub-requests run serially inside the batch unless they set
    /// their own [`TopNRequest::parallelism`].
    pub par: Option<Parallelism>,
}

impl BatchRequest {
    /// A batch over the given requests with the default fan-out.
    pub fn new(requests: Vec<Request>) -> Self {
        Self { requests, par: None }
    }

    /// Sets an explicit fan-out worker count.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.par = Some(par);
        self
    }
}

/// One observed interaction streamed into the online learning loop:
/// `user` interacted with `item`, optionally with an explicit rating and
/// extra user-side context fields (same shape as [`ScoreRequest::Cold`]
/// fields).
///
/// Interactions are validated against the *current* snapshot's schema
/// and catalog before anything is recorded — an out-of-catalog id or a
/// malformed field is a typed [`crate::RequestError`], never a panic.
/// The optional `id` makes ingestion **idempotent**: a retried feed
/// carrying the same id is acknowledged without being enqueued twice.
#[derive(Debug, Clone, PartialEq)]
pub struct Interaction {
    /// Catalog user id.
    pub user: u32,
    /// Catalog item id.
    pub item: u32,
    /// Explicit rating; `None` means an implicit positive (label 1.0).
    pub rating: Option<f64>,
    /// Extra named user-side field values, e.g. `("age", 3)`.
    pub fields: Vec<(String, usize)>,
    /// Client-chosen deduplication id for idempotent retries.
    pub id: Option<u64>,
}

impl Interaction {
    /// An implicit-positive interaction.
    pub fn new(user: u32, item: u32) -> Self {
        Self { user, item, rating: None, fields: Vec::new(), id: None }
    }

    /// Attaches an explicit rating label.
    pub fn rating(mut self, rating: f64) -> Self {
        self.rating = Some(rating);
        self
    }

    /// Attaches named user-side context fields.
    pub fn fields(mut self, fields: &[(&str, usize)]) -> Self {
        self.fields = fields.iter().map(|&(name, value)| (name.to_string(), value)).collect();
        self
    }

    /// Attaches a deduplication id for idempotent retries.
    pub fn id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// The training label this interaction contributes: the explicit
    /// rating, or 1.0 for an implicit positive.
    pub fn label(&self) -> f64 {
        self.rating.unwrap_or(1.0)
    }
}

/// Acknowledgement of one fed [`Interaction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedAck {
    /// Whether the event was newly enqueued for retraining (`false` for
    /// an idempotent duplicate — same `id` already logged).
    pub accepted: bool,
    /// Events currently pending in the interaction log after this feed.
    pub pending: usize,
}

/// A sink for streamed interactions — the ingest half of the online
/// learning loop, kept as a trait in `gmlfm-service` so transports
/// (`gmlfm-net`) can forward feeds without depending on the trainer.
///
/// Implementations must validate, fold the event into the serving
/// seen-sets *immediately* (freshness before any retrain), and enqueue
/// it for the next warm-start round. The returned [`Response`] carries
/// the generation the event was validated against.
pub trait FeedSink: Send + Sync {
    /// Validates and ingests one interaction.
    fn feed(&self, event: &Interaction) -> Result<Response<FeedAck>, RequestError>;
}

/// A reply stamped with the generation of the model snapshot that
/// produced it.
///
/// Generations start at 1 and increase by exactly 1 per successful
/// [`crate::ModelServer::swap`]; a single response is always computed
/// against a single snapshot (no torn reads across a swap), so `value`
/// is fully explained by `generation`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response<T> {
    /// Generation of the snapshot that answered this request.
    pub generation: u64,
    /// The reply payload.
    pub value: T,
}
