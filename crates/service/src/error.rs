//! The typed request-validation error: every way an online request can
//! be malformed, none of them a panic and none of them silent garbage.

use std::fmt;

/// Why a request (or a hot-swap) was rejected.
///
/// Every variant names the offending input and the bound it violated, so
/// a serving frontend can turn it into a precise 4xx-style reply without
/// string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A raw feature index at or beyond the model's one-hot dimension.
    FeatureOutOfRange {
        /// The offending feature index.
        feature: u32,
        /// The model's one-hot dimension `n`.
        n_features: usize,
    },
    /// A user id outside the serving catalog.
    UnknownUser {
        /// The requested user.
        user: u32,
        /// Number of users in the catalog.
        n_users: usize,
    },
    /// An item id outside the serving catalog.
    UnknownItem {
        /// The requested item.
        item: u32,
        /// Number of items in the catalog.
        n_items: usize,
    },
    /// A named field that does not exist in the model's schema.
    UnknownField {
        /// The unresolved field name.
        field: String,
    },
    /// The same field was given twice in one request.
    DuplicateField {
        /// The repeated field name.
        field: String,
    },
    /// A field value at or beyond the field's cardinality.
    ValueOutOfRange {
        /// The offending field name.
        field: String,
        /// The requested value.
        value: usize,
        /// The field's cardinality.
        cardinality: usize,
    },
    /// A cold-start request named an item-side field; item-side values
    /// come from the catalog via the request's `item` id.
    ItemSideField {
        /// The offending field name.
        field: String,
    },
    /// A catalog-based request (`Pair`, `Cold`, top-n) against a model
    /// served without a catalog.
    MissingCatalog,
    /// A hot-swap (or server construction) whose snapshot is not
    /// compatible with the serving schema, or is internally inconsistent.
    SchemaMismatch {
        /// Human-readable description of the incompatibility.
        reason: String,
    },
    /// A feed event arrived while the bounded interaction log was full.
    /// Transient: the event's seen-set fold (if any) is retained, but
    /// the event was not enqueued for retraining — retry after the next
    /// retrain drains the log.
    Backpressure {
        /// The log's capacity in events.
        capacity: usize,
    },
}

impl RequestError {
    /// A stable machine-readable code naming the variant, for wire
    /// protocols and logs. Codes are part of the public protocol: they
    /// never change meaning, and new variants get new codes.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::FeatureOutOfRange { .. } => "feature_out_of_range",
            RequestError::UnknownUser { .. } => "unknown_user",
            RequestError::UnknownItem { .. } => "unknown_item",
            RequestError::UnknownField { .. } => "unknown_field",
            RequestError::DuplicateField { .. } => "duplicate_field",
            RequestError::ValueOutOfRange { .. } => "value_out_of_range",
            RequestError::ItemSideField { .. } => "item_side_field",
            RequestError::MissingCatalog => "missing_catalog",
            RequestError::SchemaMismatch { .. } => "schema_mismatch",
            RequestError::Backpressure { .. } => "backpressure",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::FeatureOutOfRange { feature, n_features } => {
                write!(f, "feature index {feature} outside the model's {n_features} features")
            }
            RequestError::UnknownUser { user, n_users } => {
                write!(f, "user {user} outside the catalog's {n_users} users")
            }
            RequestError::UnknownItem { item, n_items } => {
                write!(f, "item {item} outside the catalog's {n_items} items")
            }
            RequestError::UnknownField { field } => {
                write!(f, "field '{field}' does not exist in the serving schema")
            }
            RequestError::DuplicateField { field } => {
                write!(f, "field '{field}' given more than once")
            }
            RequestError::ValueOutOfRange { field, value, cardinality } => {
                write!(f, "value {value} outside field '{field}' (cardinality {cardinality})")
            }
            RequestError::ItemSideField { field } => {
                write!(f, "field '{field}' is item-side; pass the item id instead of a field value")
            }
            RequestError::MissingCatalog => {
                write!(f, "model is served without a catalog; only feature-index requests are possible")
            }
            RequestError::SchemaMismatch { reason } => write!(f, "incompatible model snapshot: {reason}"),
            RequestError::Backpressure { capacity } => {
                write!(f, "interaction log full ({capacity} events); retry after the next retrain")
            }
        }
    }
}

impl std::error::Error for RequestError {}
