//! # gmlfm-service
//!
//! The online serving API: a typed request/response protocol answered by
//! a shared, hot-swappable model handle.
//!
//! The paper's point (Section 3.3) is that a trained GML-FM collapses to
//! plain matrices cheap enough to serve interactively; `gmlfm-serve`
//! provides those matrices as a [`gmlfm_serve::FrozenModel`]. This crate
//! provides what a *serving process* needs on top:
//!
//! * **[`protocol`]** — [`ScoreRequest`] (by instance, by raw feature
//!   indices, by catalog `(user, item)` pair, or cold-start by item +
//!   named side features), [`TopNRequest`] (candidate subsets, explicit
//!   exclusions, default seen-item filtering, per-request
//!   [`gmlfm_par::Parallelism`]), and [`BatchRequest`] fanning many
//!   requests across the pool. Every request is validated against the
//!   snapshot's [`gmlfm_data::Schema`] and [`Catalog`] into a typed
//!   [`RequestError`] — out-of-range indices and unknown ids are
//!   rejected, never scored as garbage and never a panic. Ranking
//!   requests run the **sharded bounded-heap retrieval** path: candidate
//!   filtering (exclusions, seen items) happens before selection, each
//!   worker shard keeps a size-`n` [`gmlfm_serve::TopNHeap`], and shard
//!   results merge under the deterministic total order (score desc,
//!   item id asc) — `O(C·k + C·log n)` per request instead of a full
//!   `O(C·log C)` catalogue sort, with an item-for-item identical
//!   ranking.
//! * **[`ModelServer`]** — a `Clone + Send + Sync` handle over a
//!   [`ModelSnapshot`] (schema + frozen model + catalog + [`SeenItems`])
//!   behind an atomic pointer: readers pin the current snapshot with one
//!   atomic load (wait-free, never blocked by writers), and
//!   [`ModelServer::swap`] hot-reloads a newly trained snapshot
//!   mid-traffic after a schema-compatibility check, bumping the
//!   generation stamped into every [`Response`].
//! * **[`exec`]** — the shared validation/execution path, generic over a
//!   [`ScoringBackend`] so `gmlfm-engine`'s live (non-freezable)
//!   estimators answer the same protocol with the same semantics.
//!
//! The engine's `Recommender` is a thin wrapper over this crate:
//! `Recommender::serve()` hands out the underlying [`ModelServer`], and
//! its `score*`/`top_n`/holdout-evaluation methods all route through
//! [`exec`].
#![deny(unsafe_op_in_unsafe_fn)]

pub mod catalog;
pub mod error;
pub mod exec;
pub mod protocol;
pub mod server;

pub use catalog::{Catalog, SeenItems};
pub use error::RequestError;
pub use exec::{IndexedModel, ScoringBackend};
pub use gmlfm_serve::{Precision, RetrievalStrategy};
pub use protocol::{
    BatchRequest, FeedAck, FeedSink, Interaction, Reply, Request, Response, ScoreRequest, TopNRequest,
};
pub use server::{ModelServer, ModelSnapshot};
