//! Edge cases of the exclusion ↔ retrieval interaction: every scenario
//! runs through both the sharded bounded-heap path (`ModelServer::top_n`
//! / `exec::execute_topn`) and the old full-sort path (re-implemented
//! from `exec::execute_candidate_scores` + sort + truncate) and must
//! agree item-for-item, scores bitwise.
//!
//! Filtering runs **pre-heap** ([`exec::resolve_candidates`] before
//! selection), so excluded and seen items never occupy heap slots —
//! which is what makes "all candidates excluded" an empty result rather
//! than a padded or partial one.

use gmlfm_data::{FieldKind, Schema};
use gmlfm_par::Parallelism;
use gmlfm_serve::{rank_cmp, FrozenModel};
use gmlfm_service::{exec, Catalog, ModelServer, ModelSnapshot, SeenItems, TopNRequest};

const N_USERS: usize = 5;
const N_ITEMS: usize = 20;
const DIM: usize = N_USERS + N_ITEMS;

fn server_with_seen(seen: SeenItems) -> ModelServer {
    // Weighted squared-Euclidean metric — the decoupled serving hot path.
    let frozen = FrozenModel::synthetic_metric(DIM, 4, 41);
    let schema =
        Schema::from_specs(&[("user", N_USERS, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)]);
    let catalog = Catalog::new(
        vec![1],
        (0..N_USERS as u32).map(|u| vec![u, N_USERS as u32]).collect(),
        (0..N_ITEMS as u32).map(|i| vec![N_USERS as u32 + i]).collect(),
    );
    ModelServer::new(ModelSnapshot { schema, frozen, catalog: Some(catalog), seen: Some(seen), index: None })
        .expect("consistent snapshot")
}

/// User 0 has seen everything; user 1 half the catalogue; the rest
/// nothing.
fn seen_fixture() -> SeenItems {
    let mut per_user = vec![(0..N_ITEMS as u32).collect::<Vec<_>>()];
    per_user.push((0..N_ITEMS as u32 / 2).collect());
    per_user.resize(N_USERS, Vec::new());
    SeenItems::new(per_user)
}

/// The old full-sort path over the identical request: all surviving
/// candidates scored in order, stable-sorted under the shared total
/// order, truncated.
fn full_sort_reference(server: &ModelServer, req: &TopNRequest) -> Vec<(u32, f64)> {
    let (_, snap) = server.snapshot();
    let mut scored = exec::execute_candidate_scores(
        &snap.frozen,
        snap.catalog.as_ref(),
        snap.seen.as_ref(),
        req,
        Parallelism::serial(),
    )
    .expect("edge-case requests are well-formed");
    scored.sort_by(rank_cmp);
    scored.truncate(req.n);
    scored
}

fn assert_paths_agree(server: &ModelServer, req: &TopNRequest) -> Vec<(u32, f64)> {
    let reference = full_sort_reference(server, req);
    for threads in [1usize, 2, 5] {
        let mut req = req.clone();
        req.par = Some(Parallelism::threads(threads));
        let heap = server.top_n(&req).expect("well-formed request").value;
        assert_eq!(heap.len(), reference.len(), "threads={threads}");
        for (h, r) in heap.iter().zip(&reference) {
            assert_eq!(h.0, r.0, "item order drifted at threads={threads}");
            assert_eq!(h.1.to_bits(), r.1.to_bits(), "score drifted at threads={threads}");
        }
    }
    reference
}

#[test]
fn all_seen_user_gets_an_empty_ranking_not_a_panic() {
    let server = server_with_seen(seen_fixture());
    let got = assert_paths_agree(&server, &TopNRequest::new(0, 10));
    assert!(got.is_empty(), "user 0 has seen the whole catalogue");
    // The opt-out restores the full catalogue for the same user.
    let got = assert_paths_agree(&server, &TopNRequest::new(0, 10).include_seen());
    assert_eq!(got.len(), 10);
}

#[test]
fn exclusions_covering_all_candidates_yield_empty() {
    let server = server_with_seen(seen_fixture());
    let candidates: Vec<u32> = vec![3, 7, 11];
    let req = TopNRequest::new(2, 5).candidates(candidates.clone()).exclude(candidates);
    let got = assert_paths_agree(&server, &req);
    assert!(got.is_empty(), "exclusions ∩ candidates = candidates");
}

#[test]
fn duplicate_candidates_rank_as_duplicates_on_both_paths() {
    let server = server_with_seen(seen_fixture());
    let req = TopNRequest::new(3, 6).candidates(vec![4, 4, 9, 4, 1, 9, 15]);
    let got = assert_paths_agree(&server, &req);
    assert_eq!(got.len(), 6);
    // Duplicates of the best item occupy adjacent slots on both paths.
    let best = got[0].0;
    let copies = got.iter().filter(|&&(i, _)| i == best).count();
    assert_eq!(copies, [4u32, 4, 9, 4, 1, 9, 15].iter().filter(|&&i| i == best).count());
}

#[test]
fn include_seen_opt_out_and_partial_seen_interact_correctly() {
    let server = server_with_seen(seen_fixture());
    // User 1 has seen the lower half of the catalogue.
    let excluded = assert_paths_agree(&server, &TopNRequest::new(1, N_ITEMS));
    assert_eq!(excluded.len(), N_ITEMS / 2);
    assert!(excluded.iter().all(|&(i, _)| i >= N_ITEMS as u32 / 2), "seen items filtered pre-heap");
    let all = assert_paths_agree(&server, &TopNRequest::new(1, N_ITEMS).include_seen());
    assert_eq!(all.len(), N_ITEMS);
    // Explicit exclusions compose with seen-item filtering.
    let req = TopNRequest::new(1, N_ITEMS).exclude(vec![12, 17]);
    let got = assert_paths_agree(&server, &req);
    assert_eq!(got.len(), N_ITEMS / 2 - 2);
    assert!(got.iter().all(|&(i, _)| i != 12 && i != 17));
}

#[test]
fn snapshot_without_seen_sets_excludes_nothing() {
    let server = server_with_seen(SeenItems::new(Vec::new()));
    let got = assert_paths_agree(&server, &TopNRequest::new(0, N_ITEMS));
    assert_eq!(got.len(), N_ITEMS, "no seen sets -> nothing excluded");
}

#[test]
fn n_zero_and_n_beyond_catalog_are_complete_not_partial() {
    let server = server_with_seen(seen_fixture());
    let empty = assert_paths_agree(&server, &TopNRequest::new(2, 0));
    assert!(empty.is_empty(), "n = 0 is a well-formed empty ranking");
    let all = assert_paths_agree(&server, &TopNRequest::new(2, N_ITEMS + 100));
    assert_eq!(all.len(), N_ITEMS, "n beyond the catalogue returns every candidate");
}
