//! Adversarial request fuzzing: arbitrary — including deliberately
//! malformed — [`ScoreRequest`]/[`TopNRequest`]/[`BatchRequest`]
//! payloads against a live [`ModelServer`].
//!
//! The contract under test: the validator **never panics** and **never
//! returns a partial result**. Every payload resolves to exactly one of
//!
//! * a typed [`RequestError`] naming the offending input (out-of-range
//!   ids, duplicate or unknown fields, item-side fields in cold-start
//!   requests, values beyond a field's cardinality), or
//! * a complete, internally consistent reply — where "complete" for a
//!   ranking request means exactly `min(n, surviving candidates)`
//!   entries, sorted under the deterministic retrieval order, bit-equal
//!   to the full-sort reference over the same candidates. Structural
//!   edge values that name only in-range ids — `n = 0`, `n` beyond the
//!   catalogue, empty or huge or duplicate-laden candidate lists — are
//!   well-formed and answer completely, as documented on
//!   [`TopNRequest`].

use gmlfm_data::{FieldKind, Schema};
use gmlfm_par::Parallelism;
use gmlfm_serve::{rank_cmp, FrozenModel};
use gmlfm_service::{
    exec, BatchRequest, Catalog, ModelServer, ModelSnapshot, Reply, Request, RequestError, ScoreRequest,
    SeenItems, TopNRequest,
};
use proptest::prelude::*;

const N_USERS: usize = 6;
const N_ITEMS: usize = 9;
const N_GENDER: usize = 2;
const N_CATEGORY: usize = 4;
const DIM: usize = N_USERS + N_ITEMS + N_GENDER + N_CATEGORY;

const ITEM_OFF: u32 = N_USERS as u32;
const GENDER_OFF: u32 = (N_USERS + N_ITEMS) as u32;
const CATEGORY_OFF: u32 = (N_USERS + N_ITEMS + N_GENDER) as u32;

fn schema() -> Schema {
    Schema::from_specs(&[
        ("user", N_USERS, FieldKind::User),
        ("item", N_ITEMS, FieldKind::Item),
        ("gender", N_GENDER, FieldKind::UserAttr),
        ("category", N_CATEGORY, FieldKind::Category),
    ])
}

fn catalog() -> Catalog {
    let category = |i: u32| CATEGORY_OFF + i % N_CATEGORY as u32;
    Catalog::new(
        vec![1, 3],
        (0..N_USERS as u32)
            .map(|u| vec![u, ITEM_OFF, GENDER_OFF + u % 2, category(0)])
            .collect(),
        (0..N_ITEMS as u32).map(|i| vec![ITEM_OFF + i, category(i)]).collect(),
    )
}

/// User 0 has seen the whole catalogue (the all-seen corner); the others
/// a deterministic few items.
fn seen() -> SeenItems {
    let mut per_user = vec![(0..N_ITEMS as u32).collect::<Vec<_>>()];
    for u in 1..N_USERS as u32 {
        per_user.push(vec![u % N_ITEMS as u32, (u * 3) % N_ITEMS as u32]);
    }
    SeenItems::new(per_user)
}

fn server() -> ModelServer {
    // Weighted squared-Euclidean metric — the decoupled hot path the
    // serving deployments run.
    let frozen = FrozenModel::synthetic_metric(DIM, 5, 23);
    ModelServer::new(ModelSnapshot {
        schema: schema(),
        frozen,
        catalog: Some(catalog()),
        seen: Some(seen()),
        index: None,
    })
    .expect("consistent snapshot")
}

/// Arbitrary (often malformed) score requests.
fn score_request() -> impl Strategy<Value = ScoreRequest> {
    let feats = proptest::collection::vec(0u32..(2 * DIM as u32), 0..8);
    let field_name = prop_oneof![
        Just("gender".to_string()),
        Just("category".to_string()),
        Just("user".to_string()),
        Just("no_such_field".to_string()),
    ];
    let fields = proptest::collection::vec((field_name, 0usize..6), 0..4);
    prop_oneof![
        feats.clone().prop_map(ScoreRequest::Feats),
        feats.prop_map(|f| ScoreRequest::Instance(gmlfm_data::Instance::new(f, 1.0))),
        (0u32..12, 0u32..20).prop_map(|(user, item)| ScoreRequest::Pair { user, item }),
        (0u32..20, fields).prop_map(|(item, fields)| ScoreRequest::Cold { item, fields }),
    ]
}

/// Arbitrary (often malformed) top-n requests: out-of-range users and
/// ids, empty/huge/duplicate candidate lists, n = 0 and n far beyond the
/// catalogue.
fn topn_request() -> impl Strategy<Value = TopNRequest> {
    let n = prop_oneof![Just(0usize), 1usize..6, Just(N_ITEMS), Just(10_000usize)];
    let candidates = proptest::option::of(proptest::collection::vec(0u32..14, 0..40));
    let exclude = proptest::collection::vec(0u32..14, 0..6);
    (0u32..9, n, candidates, exclude, any::<bool>(), 1usize..4).prop_map(
        |(user, n, candidates, exclude, exclude_seen, threads)| TopNRequest {
            user,
            n,
            candidates,
            exclude,
            exclude_seen,
            par: Some(Parallelism::threads(threads)),
            strategy: None,
            precision: None,
        },
    )
}

/// Whether a score request is malformed under the documented validation
/// rules (mirrored independently of the implementation).
fn score_should_fail(req: &ScoreRequest) -> bool {
    match req {
        ScoreRequest::Feats(feats) => feats.iter().any(|&f| f as usize >= DIM),
        ScoreRequest::Instance(inst) => inst.feats.iter().any(|&f| f as usize >= DIM),
        ScoreRequest::Pair { user, item } => *user as usize >= N_USERS || *item as usize >= N_ITEMS,
        ScoreRequest::Cold { item, fields } => {
            *item as usize >= N_ITEMS
                || fields.iter().enumerate().any(|(i, (name, value))| {
                    fields[..i].iter().any(|(prev, _)| prev == name)
                        || name == "no_such_field"
                        || name == "category" // item-side field
                        || name == "item"
                        || (name == "gender" && *value >= N_GENDER)
                        || (name == "user" && *value >= N_USERS)
                })
        }
    }
}

/// Whether a top-n request is malformed: only genuinely out-of-range ids
/// are; every structural edge (empty/duplicate candidates, n = 0, huge
/// n) is well-formed.
fn topn_should_fail(req: &TopNRequest) -> bool {
    req.user as usize >= N_USERS
        || req.exclude.iter().any(|&i| i as usize >= N_ITEMS)
        || req
            .candidates
            .as_ref()
            .is_some_and(|c| c.iter().any(|&i| i as usize >= N_ITEMS))
}

/// The candidates that survive exclusion filtering, mirroring the
/// documented pre-heap semantics (order preserved, duplicates kept).
fn surviving(req: &TopNRequest, seen: &SeenItems) -> Vec<u32> {
    let keep = |i: u32| !req.exclude.contains(&i) && (!req.exclude_seen || !seen.contains(req.user, i));
    match &req.candidates {
        Some(c) => c.iter().copied().filter(|&i| keep(i)).collect(),
        None => (0..N_ITEMS as u32).filter(|&i| keep(i)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every score payload is either a typed error or a complete score —
    /// and which of the two is decided exactly by the validation rules.
    #[test]
    fn arbitrary_score_requests_never_panic_and_fail_typed(req in score_request()) {
        let server = fixture();
        match server.score(&req) {
            Ok(resp) => {
                prop_assert!(!score_should_fail(&req), "malformed request answered: {req:?}");
                prop_assert!(resp.value.is_finite());
                prop_assert_eq!(resp.generation, 1);
            }
            Err(err) => {
                prop_assert!(score_should_fail(&req), "well-formed request rejected: {req:?} -> {err}");
                // The error is typed and displayable, never a panic.
                prop_assert!(!format!("{err}").is_empty());
            }
        }
    }

    /// Every top-n payload is either a typed error or a complete,
    /// reference-identical ranking — never partial, never panicking.
    #[test]
    fn arbitrary_topn_requests_never_panic_and_never_return_partial_results(req in topn_request()) {
        let server = fixture();
        let result = server.top_n(&req);
        if topn_should_fail(&req) {
            let err = result.expect_err("out-of-range ids must be rejected");
            prop_assert!(
                matches!(err, RequestError::UnknownUser { .. } | RequestError::UnknownItem { .. }),
                "unexpected error kind: {err}"
            );
            return Ok(());
        }
        let got = result.expect("well-formed request").value;
        let survivors = surviving(&req, &seen());
        prop_assert_eq!(got.len(), req.n.min(survivors.len()), "partial or padded result for {:?}", &req);
        // Sorted under the deterministic retrieval order.
        for pair in got.windows(2) {
            prop_assert!(rank_cmp(&pair[0], &pair[1]) != std::cmp::Ordering::Greater);
        }
        // Excluded and seen items never occupy slots.
        for &(item, _) in &got {
            prop_assert!(survivors.contains(&item), "item {} not among surviving candidates", item);
        }
        // Bit-equal to the full-sort reference over the same request.
        let (_, snap) = server.snapshot();
        let mut reference = exec::execute_candidate_scores(
            &snap.frozen,
            snap.catalog.as_ref(),
            snap.seen.as_ref(),
            &req,
            Parallelism::serial(),
        ).expect("same validation");
        reference.sort_by(rank_cmp);
        reference.truncate(req.n);
        prop_assert_eq!(got, reference, "heap path drifted from the full-sort reference");
    }

    /// A batch never fails as a whole: each sub-request succeeds or
    /// fails exactly as it would standalone, and malformed slots do not
    /// disturb their neighbours.
    #[test]
    fn arbitrary_batches_fail_slotwise_not_wholesale(
        scores in proptest::collection::vec(score_request(), 0..4),
        topns in proptest::collection::vec(topn_request(), 0..3),
    ) {
        let server = fixture();
        let mut requests: Vec<Request> = scores.iter().cloned().map(Request::Score).collect();
        requests.extend(topns.iter().cloned().map(Request::TopN));
        let batch = BatchRequest::new(requests.clone());
        let resp = server.batch(&batch);
        prop_assert_eq!(resp.value.len(), requests.len(), "batch reply is complete");
        for (request, reply) in requests.iter().zip(&resp.value) {
            match request {
                Request::Score(req) => match (server.score(req), reply) {
                    (Ok(standalone), Ok(Reply::Score(batched))) => {
                        prop_assert_eq!(standalone.value.to_bits(), batched.to_bits());
                    }
                    (Err(standalone), Err(batched)) => prop_assert_eq!(&standalone, batched),
                    (standalone, batched) => {
                        return Err(TestCaseError::fail(format!(
                            "score slot diverged: standalone {standalone:?} vs batched {batched:?}"
                        )));
                    }
                },
                Request::TopN(req) => match (server.top_n(req), reply) {
                    (Ok(standalone), Ok(Reply::TopN(batched))) => {
                        prop_assert_eq!(&standalone.value, batched);
                    }
                    (Err(standalone), Err(batched)) => prop_assert_eq!(&standalone, batched),
                    (standalone, batched) => {
                        return Err(TestCaseError::fail(format!(
                            "top-n slot diverged: standalone {standalone:?} vs batched {batched:?}"
                        )));
                    }
                },
            }
        }
    }
}

/// The fixture server, built once — proptest closures run many cases.
fn fixture() -> &'static ModelServer {
    static SERVER: std::sync::OnceLock<ModelServer> = std::sync::OnceLock::new();
    SERVER.get_or_init(server)
}
