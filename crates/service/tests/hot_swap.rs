//! Concurrency and protocol tests for the hot-swappable [`ModelServer`]:
//! reader threads hammer the handle while a writer performs repeated
//! swaps, and every response must be consistent with exactly one model
//! generation — no torn reads, no blocking, no panics.
//!
//! The fixture model makes torn reads *detectable*: generation `g`
//! serves a frozen model whose every score is exactly `g * 1000.0` (bias
//! `w0 = g * 1000`, all other parameters zero), so a response whose
//! value disagrees with `marker(response.generation)` can only come from
//! mixing two generations.

use gmlfm_data::{FieldKind, Schema};
use gmlfm_serve::{FrozenModel, SecondOrder};
use gmlfm_service::{
    BatchRequest, Catalog, ModelServer, ModelSnapshot, Reply, Request, RequestError, ScoreRequest, SeenItems,
    TopNRequest,
};
use gmlfm_tensor::Matrix;
use std::sync::atomic::{AtomicBool, Ordering};

const N_USERS: usize = 8;
const N_ITEMS: usize = 12;

fn schema() -> Schema {
    Schema::from_specs(&[("user", N_USERS, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)])
}

fn catalog() -> Catalog {
    Catalog::new(
        vec![1],
        (0..N_USERS as u32).map(|u| vec![u, N_USERS as u32]).collect(),
        (0..N_ITEMS as u32).map(|i| vec![N_USERS as u32 + i]).collect(),
    )
}

/// The score every request against this snapshot must return.
fn marker(generation: u64) -> f64 {
    generation as f64 * 1000.0
}

/// A snapshot whose every score is exactly `marker(generation)`.
fn snapshot(generation: u64) -> ModelSnapshot {
    let n = N_USERS + N_ITEMS;
    let frozen =
        FrozenModel::from_parts(marker(generation), vec![0.0; n], Matrix::zeros(n, 3), SecondOrder::Dot);
    ModelSnapshot { schema: schema(), frozen, catalog: Some(catalog()), seen: None, index: None }
}

#[test]
fn swaps_under_concurrent_readers_never_tear_a_response() {
    const SWAPS: u64 = 60;
    let server = ModelServer::new(snapshot(1)).expect("consistent snapshot");
    assert_eq!(server.generation(), 1);

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for reader in 0..4 {
            let server = server.clone(); // the handle under test is Clone + Send + Sync
            let done = &done;
            readers.push(s.spawn(move || {
                let mut last_gen = 0u64;
                let mut iterations = 0u64;
                while !done.load(Ordering::Relaxed) {
                    // Score: value fully explained by the stamped generation.
                    let resp = server.score(&ScoreRequest::pair(reader, 3)).expect("valid pair");
                    assert_eq!(resp.value, marker(resp.generation), "torn score response");
                    assert!(resp.generation >= last_gen, "generation went backwards");
                    last_gen = resp.generation;

                    // Top-n: every candidate scored by the same generation,
                    // ties broken by ascending item id.
                    let resp = server.top_n(&TopNRequest::new(reader, 5)).expect("valid top-n request");
                    assert_eq!(resp.value.len(), 5);
                    for (rank, &(item, score)) in resp.value.iter().enumerate() {
                        assert_eq!(item, rank as u32, "equal scores must sort by item id");
                        assert_eq!(score, marker(resp.generation), "torn top-n response");
                    }
                    assert!(resp.generation >= last_gen);
                    last_gen = resp.generation;

                    // Batch: one generation for every sub-reply.
                    let batch = BatchRequest::new(vec![
                        Request::Score(ScoreRequest::pair(reader, 0)),
                        Request::Score(ScoreRequest::feats(vec![reader, N_USERS as u32 + 1])),
                        Request::TopN(TopNRequest::new(reader, 2)),
                    ]);
                    let resp = server.batch(&batch);
                    let expected = marker(resp.generation);
                    for reply in &resp.value {
                        match reply.as_ref().expect("all batch sub-requests are valid") {
                            Reply::Score(score) => assert_eq!(*score, expected, "torn batch score"),
                            Reply::TopN(ranked) => {
                                assert!(ranked.iter().all(|&(_, s)| s == expected), "torn batch top-n")
                            }
                        }
                    }
                    iterations += 1;
                }
                iterations
            }));
        }

        // Writer: swap through SWAPS generations while the readers run.
        for generation in 2..=SWAPS {
            let installed = server.swap(snapshot(generation)).expect("schema-compatible swap");
            assert_eq!(installed, generation, "generations must bump by exactly 1");
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);

        for reader in readers {
            let iterations = reader.join().expect("reader must not panic");
            assert!(iterations > 0, "reader never got to run");
        }
    });

    assert_eq!(server.generation(), SWAPS);
    // Superseded generations are retained (that is what keeps lock-free
    // readers sound), one per install.
    assert_eq!(server.retained(), SWAPS as usize);
    // A fresh clone sees the final generation immediately.
    assert_eq!(server.clone().score(&ScoreRequest::pair(0, 0)).unwrap().value, marker(SWAPS));
}

#[test]
fn incompatible_swaps_are_rejected_and_change_nothing() {
    let server = ModelServer::new(snapshot(1)).expect("consistent snapshot");

    // Different cardinality.
    let mut other = snapshot(2);
    other.schema =
        Schema::from_specs(&[("user", N_USERS + 1, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)]);
    let n = N_USERS + 1 + N_ITEMS;
    other.frozen = FrozenModel::from_parts(0.0, vec![0.0; n], Matrix::zeros(n, 3), SecondOrder::Dot);
    other.catalog = None;
    let err = server.swap(other).unwrap_err();
    assert!(matches!(err, RequestError::SchemaMismatch { .. }), "{err}");

    // Different field name.
    let mut other = snapshot(2);
    other.schema =
        Schema::from_specs(&[("member", N_USERS, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)]);
    assert!(matches!(server.swap(other), Err(RequestError::SchemaMismatch { .. })));

    // Internally inconsistent snapshot: frozen dimension != schema.
    let mut other = snapshot(2);
    other.frozen = FrozenModel::from_parts(0.0, vec![0.0; 3], Matrix::zeros(3, 2), SecondOrder::Dot);
    assert!(matches!(server.swap(other), Err(RequestError::SchemaMismatch { .. })));

    // Catalog indices outside the frozen dimension are rejected up front
    // (construction and swap alike), so requests can never panic on them.
    let mut other = snapshot(2);
    other.catalog = Some(Catalog::new(vec![1], vec![vec![0, 10_000]], vec![vec![10_000]]));
    assert!(matches!(ModelServer::new(other.clone()), Err(RequestError::SchemaMismatch { .. })));
    assert!(matches!(server.swap(other), Err(RequestError::SchemaMismatch { .. })));

    // Nothing changed: still generation 1, still serving.
    assert_eq!(server.generation(), 1);
    assert_eq!(server.retained(), 1);
    assert_eq!(server.score(&ScoreRequest::pair(0, 0)).unwrap().value, marker(1));
}

#[test]
fn malformed_requests_are_typed_errors_never_panics() {
    let server = ModelServer::new(snapshot(1)).expect("consistent snapshot");

    let err = server
        .score(&ScoreRequest::feats(vec![0, (N_USERS + N_ITEMS) as u32]))
        .unwrap_err();
    assert!(matches!(err, RequestError::FeatureOutOfRange { feature: 20, n_features: 20 }), "{err}");

    let err = server.score(&ScoreRequest::pair(N_USERS as u32, 0)).unwrap_err();
    assert!(matches!(err, RequestError::UnknownUser { user: 8, n_users: N_USERS }), "{err}");

    let err = server.score(&ScoreRequest::pair(0, N_ITEMS as u32)).unwrap_err();
    assert!(matches!(err, RequestError::UnknownItem { item: 12, n_items: N_ITEMS }), "{err}");

    let err = server.top_n(&TopNRequest::new(99, 3)).unwrap_err();
    assert!(matches!(err, RequestError::UnknownUser { user: 99, .. }), "{err}");

    let err = server.top_n(&TopNRequest::new(0, 3).candidates(vec![0, 77])).unwrap_err();
    assert!(matches!(err, RequestError::UnknownItem { item: 77, .. }), "{err}");

    let err = server.top_n(&TopNRequest::new(0, 3).exclude(vec![400])).unwrap_err();
    assert!(matches!(err, RequestError::UnknownItem { item: 400, .. }), "{err}");

    // A snapshot without a catalog answers feature requests only.
    let mut no_catalog = snapshot(1);
    no_catalog.catalog = None;
    let server = ModelServer::new(no_catalog).expect("catalog is optional");
    assert!(server.score(&ScoreRequest::feats(vec![1])).is_ok());
    assert!(matches!(server.score(&ScoreRequest::pair(0, 0)), Err(RequestError::MissingCatalog)));
    assert!(matches!(server.top_n(&TopNRequest::new(0, 3)), Err(RequestError::MissingCatalog)));

    // Malformed sub-requests fail individually inside a batch.
    let resp = server.batch(&BatchRequest::new(vec![
        Request::Score(ScoreRequest::feats(vec![0])),
        Request::Score(ScoreRequest::pair(0, 0)),
    ]));
    assert!(resp.value[0].is_ok());
    assert!(matches!(resp.value[1], Err(RequestError::MissingCatalog)));
}

#[test]
fn cold_start_requests_resolve_named_side_features() {
    // user (8), gender (2, user attr), item (12).
    let schema = Schema::from_specs(&[
        ("user", N_USERS, FieldKind::User),
        ("gender", 2, FieldKind::UserAttr),
        ("item", N_ITEMS, FieldKind::Item),
    ]);
    let n = schema.total_dim();
    // Linear weights = feature index, so scores decode which features
    // were active: score = Σ active feature indices.
    let w: Vec<f64> = (0..n).map(|f| f as f64).collect();
    let frozen = FrozenModel::from_parts(0.0, w, Matrix::zeros(n, 3), SecondOrder::Dot);
    let item_off = (N_USERS + 2) as u32;
    let catalog = Catalog::new(
        vec![2],
        (0..N_USERS as u32).map(|u| vec![u, N_USERS as u32, item_off]).collect(),
        (0..N_ITEMS as u32).map(|i| vec![item_off + i]).collect(),
    );
    let server =
        ModelServer::new(ModelSnapshot { schema, frozen, catalog: Some(catalog), seen: None, index: None })
            .expect("consistent snapshot");

    // Cold user with gender=1 scoring item 4: active features are the
    // item one-hot and gender one-hot — no user id at all.
    let resp = server
        .score(&ScoreRequest::cold(4, &[("gender", 1)]))
        .expect("valid cold request");
    assert_eq!(resp.value, (item_off + 4) as f64 + (N_USERS + 1) as f64);

    // Validation catches every malformed shape as a typed error.
    let err = server.score(&ScoreRequest::cold(4, &[("age", 1)])).unwrap_err();
    assert!(matches!(err, RequestError::UnknownField { .. }), "{err}");
    let err = server.score(&ScoreRequest::cold(4, &[("gender", 2)])).unwrap_err();
    assert!(matches!(err, RequestError::ValueOutOfRange { value: 2, cardinality: 2, .. }), "{err}");
    let err = server
        .score(&ScoreRequest::cold(4, &[("gender", 0), ("gender", 1)]))
        .unwrap_err();
    assert!(matches!(err, RequestError::DuplicateField { .. }), "{err}");
    let err = server.score(&ScoreRequest::cold(4, &[("item", 0)])).unwrap_err();
    assert!(matches!(err, RequestError::ItemSideField { .. }), "{err}");
    let err = server.score(&ScoreRequest::cold(N_ITEMS as u32, &[("gender", 0)])).unwrap_err();
    assert!(matches!(err, RequestError::UnknownItem { .. }), "{err}");
}

#[test]
fn topn_excludes_seen_items_by_default_with_an_opt_out() {
    let mut snap = snapshot(1);
    // User 2 saw items 1, 3, 5 during training.
    let mut per_user = vec![Vec::new(); N_USERS];
    per_user[2] = vec![5, 1, 3];
    snap.seen = Some(SeenItems::new(per_user));
    let server = ModelServer::new(snap).expect("consistent snapshot");

    let ranked = server.top_n(&TopNRequest::new(2, N_ITEMS)).expect("valid request").value;
    let items: Vec<u32> = ranked.iter().map(|&(i, _)| i).collect();
    assert_eq!(ranked.len(), N_ITEMS - 3);
    assert!(items.iter().all(|i| ![1, 3, 5].contains(i)), "seen items must be excluded: {items:?}");

    // Opt out: the full catalogue again.
    let all = server.top_n(&TopNRequest::new(2, N_ITEMS).include_seen()).unwrap().value;
    assert_eq!(all.len(), N_ITEMS);

    // Explicit exclusions compose with the seen set.
    let ranked = server
        .top_n(&TopNRequest::new(2, N_ITEMS).exclude(vec![0, 7]))
        .expect("valid request")
        .value;
    let items: Vec<u32> = ranked.iter().map(|&(i, _)| i).collect();
    assert_eq!(ranked.len(), N_ITEMS - 5);
    assert!(items.iter().all(|i| ![0, 1, 3, 5, 7].contains(i)), "{items:?}");

    // Candidate subsets are filtered the same way, preserving request
    // order before the sort.
    let ranked = server
        .candidate_scores(&TopNRequest::new(2, N_ITEMS).candidates(vec![9, 3, 0]))
        .expect("valid request")
        .value;
    assert_eq!(ranked.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![9, 0], "3 is seen");

    // Other users have no seen items: nothing is excluded for them.
    let other = server.top_n(&TopNRequest::new(0, N_ITEMS)).unwrap().value;
    assert_eq!(other.len(), N_ITEMS);
}
