//! Property tests pinning the determinism contract of [`SeenItems`]'
//! in-place mutation API: the resulting table depends only on the *set*
//! of recorded entries — never on insertion order, duplication, or
//! whether entries arrived via `insert`, `merge_user`, `merge`, or an
//! up-front `SeenItems::new` rebuild. The online loop leans on this: the
//! serving overlay folds events one at a time while retrains merge whole
//! tables, and both must converge on bitwise-identical seen sets.

use gmlfm_service::SeenItems;
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary entry stream: small user/item ranges so collisions (the
/// interesting case) are common.
fn arb_entries() -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0u32..24, 0u32..48), 0..200)
}

/// Arbitrary per-user table rows.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(vec(0u32..48, 0..16), 0..24)
}

/// The ground-truth rebuild: one row per user up to the largest user id
/// in `entries`, built in one shot by `SeenItems::new`.
fn rebuild(entries: &[(u32, u32)]) -> SeenItems {
    let len = entries.iter().map(|&(u, _)| u as usize + 1).max().unwrap_or(0);
    let mut rows = vec![Vec::new(); len];
    for &(user, item) in entries {
        rows[user as usize].push(item);
    }
    SeenItems::new(rows)
}

proptest! {
    /// `insert`ing incrementally — in any order, duplicates and all —
    /// lands on the exact table `SeenItems::new` builds from scratch.
    #[test]
    fn incremental_insert_is_bitwise_equal_to_rebuild(entries in arb_entries()) {
        let mut forward = SeenItems::new(Vec::new());
        let mut tracked = std::collections::BTreeSet::new();
        for &(user, item) in &entries {
            let fresh = forward.insert(user, item);
            prop_assert_eq!(fresh, tracked.insert((user, item)), "insert reports freshness");
        }
        let mut reversed = SeenItems::new(Vec::new());
        for &(user, item) in entries.iter().rev() {
            reversed.insert(user, item);
        }
        let scratch = rebuild(&entries);
        prop_assert_eq!(&forward, &scratch);
        prop_assert_eq!(&reversed, &scratch);
    }

    /// `merge` is exactly the entry-by-entry `insert` of the other
    /// table — whole-table folding (retrain publish) and event-by-event
    /// folding (the live overlay) cannot drift apart.
    #[test]
    fn merge_equals_inserting_every_entry(left in arb_rows(), right in arb_rows()) {
        let mut merged = SeenItems::new(left.clone());
        let other = SeenItems::new(right);
        merged.merge(&other);

        let mut inserted = SeenItems::new(left);
        for user in 0..other.n_users() as u32 {
            for &item in other.items(user) {
                inserted.insert(user, item);
            }
        }
        prop_assert_eq!(&merged, &inserted);
    }

    /// `merge` is idempotent and commutes up to the recorded-range
    /// padding: merging A into B and B into A agree on every user's
    /// items, and re-merging changes nothing.
    #[test]
    fn merge_is_idempotent_and_item_commutative(left in arb_rows(), right in arb_rows()) {
        let a = SeenItems::new(left);
        let b = SeenItems::new(right);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let users = ab.n_users().max(ba.n_users()) as u32;
        for user in 0..users {
            prop_assert_eq!(ab.items(user), ba.items(user), "user {}", user);
        }

        let mut again = ab.clone();
        again.merge(&b);
        again.merge(&a);
        prop_assert_eq!(&again, &ab);
    }

    /// `merge_user` accepts any order and duplication and always lands
    /// on the sorted, deduplicated row — equal to inserting one by one.
    #[test]
    fn merge_user_normalises_any_input(user in 0u32..24, items in vec(0u32..48, 0..64)) {
        let mut via_merge = SeenItems::new(Vec::new());
        via_merge.merge_user(user, &items);

        let mut via_insert = SeenItems::new(Vec::new());
        for &item in &items {
            via_insert.insert(user, item);
        }
        prop_assert_eq!(&via_merge, &via_insert);

        // The row invariant holds: strictly increasing.
        let row = via_merge.items(user);
        prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row not sorted/deduped: {:?}", row);
    }
}
