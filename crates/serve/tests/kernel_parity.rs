//! Kernel-parity sweep for the chunked scoring hot path.
//!
//! Three layers of pinning, from strictest to loosest:
//!
//! 1. **Block scan ≡ per-item scan, bitwise** — `score_block` (the
//!    `CAND_BLOCK`-wide entry the sharded retrieval path uses) must
//!    reproduce the per-item `score` loop bit for bit across every
//!    metric mode, factor widths straddling the kernel lane width, and
//!    candidate counts straddling the block width (remainder-loop
//!    coverage on both axes).
//! 2. **Chunked kernels ≈ scalar loop, ≤1e-12** — the `score_scalar`
//!    baseline mirrors every delta form with naive serial accumulation;
//!    the chunked kernels may round differently but never beyond a
//!    pairwise-reassociation bound.
//! 3. **Low-precision tables** — the `f32` scan stays inside its
//!    documented error bound against the exact scores; the `i8` probe +
//!    exact re-rank returns scores **bitwise** the `f64` model's.

use gmlfm_core::Distance;
use gmlfm_par::Parallelism;
use gmlfm_serve::{
    scan_top_n_prec, sharded_top_n, sharded_top_n_blocks, FrozenModel, IvfBuildOptions, IvfIndex, Precision,
    SecondOrder,
};
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use proptest::prelude::*;
use std::num::NonZeroUsize;

const N_USERS: usize = 4;
const N_ATTRS: usize = 9;

/// One candidate count per interesting remainder class of the 32-wide
/// candidate block: below, at, one past, and two-blocks-plus-remainder.
const CAND_COUNTS: [usize; 5] = [1, 31, 32, 33, 65];

/// Factor widths straddling the 8-lane kernel chunk.
const KS: [usize; 4] = [1, 2, 7, 16];

struct Fixture {
    model: FrozenModel,
    items: Vec<Vec<u32>>,
    template: Vec<u32>,
    item_slots: Vec<usize>,
}

/// A model + catalogue in every second-order mode the ranker serves.
/// `mode` also selects the context width: the weighted and unweighted
/// SquaredEuclidean forms have distinct narrow (`ctx ≤ k`) and wide
/// (`ctx > k`) delta paths, so both get their own fixture.
fn fixture(mode: usize, k: usize, n_items: usize, seed: u64) -> Fixture {
    let dim = N_USERS + n_items + N_ATTRS;
    let mut rng = seeded_rng(seed);
    let v = normal(&mut rng, dim, k, 0.0, 0.4);
    let v_hat = normal(&mut rng, dim, k, 0.0, 0.4);
    let h = normal(&mut rng, 1, k, 0.0, 0.4).into_vec();
    let w = normal(&mut rng, 1, dim, 0.0, 0.1).into_vec();
    let q: Vec<f64> = (0..dim).map(|r| v_hat.row(r).iter().map(|x| x * x).sum()).collect();
    let metric = |h: Option<Vec<f64>>, d: Distance| SecondOrder::metric(v_hat.clone(), q.clone(), h, d);
    let (second, wide_ctx) = match mode {
        0 => (metric(Some(h), Distance::SquaredEuclidean), false),
        1 => (metric(Some(h), Distance::SquaredEuclidean), true),
        2 => (metric(None, Distance::SquaredEuclidean), false),
        3 => (metric(None, Distance::SquaredEuclidean), true),
        4 => (metric(Some(h), Distance::Manhattan), false),
        5 => (metric(None, Distance::Chebyshev), false),
        6 => (metric(Some(h), Distance::Cosine), false),
        7 => (SecondOrder::Translated { v_trans: normal(&mut rng, dim, k, 0.0, 0.3) }, false),
        _ => (SecondOrder::Dot, false),
    };
    let model = FrozenModel::from_parts(0.1, w, v, second);
    let items: Vec<Vec<u32>> = (0..n_items)
        .map(|i| vec![(N_USERS + i) as u32, (N_USERS + n_items + (i * 7 + 3) % N_ATTRS) as u32])
        .collect();
    // Wide contexts exceed any k in KS: 17 user-side features before
    // the two item slots (attribute indices repeat, which is legal).
    let (template, item_slots) = if wide_ctx {
        let mut t = vec![1u32];
        t.extend((0..16).map(|a| (N_USERS + n_items + a % N_ATTRS) as u32));
        t.extend([0, 0]); // item slots, filled per candidate
        let slots = vec![17usize, 18];
        (t, slots)
    } else {
        (vec![1u32, 0, 0], vec![1usize, 2])
    };
    Fixture { model, items, template, item_slots }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layer 1: the block entry is the per-item loop, bit for bit, at
    /// every shard/thread split.
    #[test]
    fn block_scan_is_bitwise_the_per_item_scan(
        mode in 0usize..9,
        k_idx in 0usize..KS.len(),
        count_idx in 0usize..CAND_COUNTS.len(),
        threads in 1usize..4,
        seed in 0u64..50,
    ) {
        let count = CAND_COUNTS[count_idx];
        let fx = fixture(mode, KS[k_idx], count, seed);
        let candidates: Vec<u32> = (0..count as u32).collect();
        let shards = NonZeroUsize::new(threads).expect("threads >= 1");
        let par = Parallelism::threads(threads);
        let per_item = sharded_top_n(
            &candidates,
            count,
            shards,
            par,
            || fx.model.ranker(&fx.template, &fx.item_slots),
            |ranker, item| ranker.score(&fx.items[item as usize]),
        );
        let blocked = sharded_top_n_blocks(
            &candidates,
            count,
            shards,
            par,
            || fx.model.ranker(&fx.template, &fx.item_slots),
            |ranker, ids, out| ranker.score_block(&fx.items, ids, out),
        );
        prop_assert_eq!(per_item.len(), blocked.len());
        for (p, b) in per_item.iter().zip(&blocked) {
            prop_assert_eq!(p.0, b.0, "mode {} k {} count {}", mode, KS[k_idx], count);
            prop_assert_eq!(
                p.1.to_bits(), b.1.to_bits(),
                "mode {} k {} count {}: per-item {} vs blocked {}", mode, KS[k_idx], count, p.1, b.1
            );
        }
    }

    /// Layer 2: chunked kernels vs the naive scalar accumulation — at
    /// most pairwise-reassociation rounding apart.
    #[test]
    fn chunked_scores_match_the_scalar_loop(
        mode in 0usize..9,
        k_idx in 0usize..KS.len(),
        seed in 0u64..50,
    ) {
        let count = 33; // one full block plus a remainder item
        let fx = fixture(mode, KS[k_idx], count, seed);
        let mut chunked = fx.model.ranker(&fx.template, &fx.item_slots);
        let mut scalar = fx.model.ranker(&fx.template, &fx.item_slots);
        for item in 0..count as u32 {
            let feats = &fx.items[item as usize];
            let a = chunked.score(feats);
            let b = scalar.score_scalar(feats);
            prop_assert!(
                (a - b).abs() <= 1e-12 * a.abs().max(1.0),
                "mode {} k {} item {}: chunked {} vs scalar {}", mode, KS[k_idx], item, a, b
            );
        }
    }
}

/// Layer 3a: the `f32` scan stays inside its documented error bound
/// against the exact scores of the same items.
#[test]
fn f32_scan_is_error_bounded_against_f64() {
    for seed in [3u64, 17, 40] {
        let fx = fixture(0, 8, 200, seed);
        let model = fx.model.with_precision(Precision::F32);
        assert_eq!(model.precision(), Precision::F32);
        let candidates: Vec<u32> = (0..200).collect();
        let got = scan_top_n_prec(
            &model,
            &fx.items,
            &candidates,
            &fx.template,
            &fx.item_slots,
            200,
            Precision::F32,
            NonZeroUsize::new(2).expect("nonzero"),
            Parallelism::threads(2),
        )
        .expect("metric SquaredEuclidean models carry f32 tables");
        assert_eq!(got.len(), 200);
        let mut exact = model.ranker(&fx.template, &fx.item_slots);
        for (item, approx) in &got {
            let want = exact.score(&fx.items[*item as usize]);
            assert!(
                (approx - want).abs() <= 1e-5 * want.abs().max(1.0),
                "seed {seed} item {item}: f32 {approx} vs f64 {want}"
            );
        }
    }
}

/// Layer 3b: the `i8` scan over-fetches and re-ranks exactly, so its
/// returned scores are **bitwise** the exact ranker's — and with the
/// 4x pool on a smooth synthetic model, the returned ranking is the
/// exact top-n itself.
#[test]
fn i8_scan_returns_bitwise_exact_scores() {
    for seed in [5u64, 23, 41] {
        let fx = fixture(0, 8, 300, seed);
        let model = fx.model.with_precision(Precision::I8);
        let candidates: Vec<u32> = (0..300).collect();
        let n = 10;
        let got = scan_top_n_prec(
            &model,
            &fx.items,
            &candidates,
            &fx.template,
            &fx.item_slots,
            n,
            Precision::I8,
            NonZeroUsize::new(3).expect("nonzero"),
            Parallelism::threads(3),
        )
        .expect("metric SquaredEuclidean models carry i8 tables");
        assert_eq!(got.len(), n);
        let mut exact = model.ranker(&fx.template, &fx.item_slots);
        for (item, score) in &got {
            let want = exact.score(&fx.items[*item as usize]);
            assert_eq!(
                score.to_bits(),
                want.to_bits(),
                "seed {seed} item {item}: i8 re-rank must return the exact score"
            );
        }
        let reference = sharded_top_n(
            &candidates,
            n,
            NonZeroUsize::new(1).expect("nonzero"),
            Parallelism::serial(),
            || model.ranker(&fx.template, &fx.item_slots),
            |ranker, item| ranker.score(&fx.items[item as usize]),
        );
        assert_eq!(got, reference, "seed {seed}: 4x pool covers the exact top-{n} here");
    }
}

/// Layer 3c: the IVF probe at `i8` keeps the index contract — returned
/// scores bitwise the model's — and a full probe with the quantized
/// scan still reproduces the exact retrieval on this fixture.
#[test]
fn i8_ivf_probe_keeps_scores_bitwise_exact() {
    let fx = fixture(0, 8, 300, 13);
    let model = fx.model.with_precision(Precision::I8);
    let opts = IvfBuildOptions { clusters: Some(12), ..IvfBuildOptions::default() };
    let index = IvfIndex::build(&model, &fx.items, &opts, Parallelism::serial()).expect("metric model");
    let n = 10;
    for threads in [1usize, 3] {
        let got = index.search_prec(
            &model,
            &fx.items,
            &fx.template,
            &fx.item_slots,
            n,
            index.n_clusters(),
            Parallelism::threads(threads),
            &|_| false,
            Precision::I8,
        );
        let exact = index.search(
            &model,
            &fx.items,
            &fx.template,
            &fx.item_slots,
            n,
            index.n_clusters(),
            Parallelism::threads(threads),
            &|_| false,
        );
        let mut ranker = model.ranker(&fx.template, &fx.item_slots);
        for (item, score) in &got {
            let want = ranker.score(&fx.items[*item as usize]);
            assert_eq!(score.to_bits(), want.to_bits(), "threads {threads} item {item}");
        }
        assert_eq!(got, exact, "threads {threads}: full i8 probe matches the exact search here");
    }
}
