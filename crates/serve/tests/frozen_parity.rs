//! Property tests pinning the frozen serving path to the autograd path:
//! for random `TransformKind` / `Distance` / `use_weight` configurations
//! and random sparse instances, `FrozenModel` scoring must match
//! `GraphModel::predict` to ≤1e-9 — before and after training, and
//! through the top-N ranker.

use gmlfm_core::{Distance, GmlFm, GmlFmConfig, TransformKind};
use gmlfm_data::Instance;
use gmlfm_serve::Freeze;
use gmlfm_train::{fit_regression, GraphModel, TrainConfig};
use proptest::prelude::*;

const N_FEATURES: usize = 36;

fn config_from(transform: u8, distance: u8, use_weight: bool, seed: u64) -> GmlFmConfig {
    let transform = match transform % 4 {
        0 => TransformKind::Identity,
        1 => TransformKind::Mahalanobis,
        2 => TransformKind::Dnn(1),
        _ => TransformKind::Dnn(2),
    };
    let distance = Distance::ALL[distance as usize % Distance::ALL.len()];
    GmlFmConfig { k: 5, transform, distance, use_weight, dropout: 0.1, init_std: 0.05, seed }
}

fn instance_from(feats: Vec<u32>) -> Option<Instance> {
    let mut feats = feats;
    feats.sort_unstable();
    feats.dedup();
    (feats.len() >= 2).then(|| Instance::new(feats, 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn frozen_matches_graph_predict_across_configs(
        transform in 0u8..4,
        distance in 0u8..4,
        use_weight in 0u8..2,
        seed in 0u64..200,
        feats in proptest::collection::vec(0u32..(N_FEATURES as u32), 2..6),
    ) {
        let Some(inst) = instance_from(feats) else { return Ok(()) };
        let cfg = config_from(transform, distance, use_weight == 1, seed);
        let model = GmlFm::new(N_FEATURES, &cfg);
        let frozen = model.freeze();
        let graph = model.predict(std::slice::from_ref(&inst))[0];
        let served = frozen.predict(&inst);
        prop_assert!(
            (graph - served).abs() <= 1e-9 * graph.abs().max(1.0),
            "transform {transform} distance {distance} weight {use_weight}: graph {graph} vs frozen {served}"
        );
    }

    #[test]
    fn ranker_matches_graph_predict_per_candidate(
        transform in 0u8..4,
        distance in 0u8..4,
        use_weight in 0u8..2,
        seed in 0u64..100,
        user in 0u32..12,
        candidates in proptest::collection::vec(12u32..(N_FEATURES as u32), 2..8),
    ) {
        let cfg = config_from(transform, distance, use_weight == 1, seed);
        let model = GmlFm::new(N_FEATURES, &cfg);
        let frozen = model.freeze();
        // Template [user, item]; slot 1 varies per candidate.
        let mut ranker = frozen.ranker(&[user, candidates[0]], &[1]);
        for &cand in &candidates {
            let inst = Instance::new(vec![user, cand], 1.0);
            let graph = model.predict(std::slice::from_ref(&inst))[0];
            let served = ranker.score(&[cand]);
            prop_assert!(
                (graph - served).abs() <= 1e-9 * graph.abs().max(1.0),
                "transform {transform} distance {distance} weight {use_weight} cand {cand}: graph {graph} vs ranker {served}"
            );
        }
    }
}

/// The headline guarantee on *trained* weights: train each transform
/// family briefly, freeze, and compare against the autograd eval path on
/// every test instance.
#[test]
fn trained_models_freeze_to_matching_predictions() {
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    let dataset = generate(&DatasetSpec::AmazonAuto.config(51).scaled(0.15));
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, 9);
    for cfg in [
        GmlFmConfig::mahalanobis(8),
        GmlFmConfig::dnn(8, 1),
        GmlFmConfig::euclidean_plain(8),
        GmlFmConfig::dnn(8, 1).with_distance(Distance::Manhattan),
    ] {
        let mut model = GmlFm::new(dataset.schema.total_dim(), &cfg);
        fit_regression(&mut model, &split.train, None, &TrainConfig { epochs: 2, ..TrainConfig::default() });
        let frozen = model.freeze();
        let graph_scores = model.predict(&split.test);
        for (inst, graph) in split.test.iter().zip(&graph_scores) {
            let served = frozen.predict(inst);
            assert!(
                (graph - served).abs() <= 1e-9 * graph.abs().max(1.0),
                "{:?}: graph {graph} vs frozen {served}",
                cfg.transform
            );
        }
    }
}
