//! Freezing trained models into [`FrozenModel`]s.

use crate::frozen::{dot, FrozenModel, SecondOrder};
use gmlfm_core::GmlFm;
use gmlfm_models::{FactorizationMachine, TransFm};
use gmlfm_tensor::Matrix;
use gmlfm_train::GraphModel;

/// Extraction of a serving-ready [`FrozenModel`] from a trained model.
///
/// Freezing copies the current parameter values (training afterwards does
/// not affect the frozen copy) and precomputes the transformed embedding
/// table and per-feature norms, so all serving-time evaluation is
/// tape-free.
pub trait Freeze {
    /// Copies the trained parameters into a frozen serving model.
    fn freeze(&self) -> FrozenModel;
}

impl Freeze for GmlFm {
    fn freeze(&self) -> FrozenModel {
        let params = self.params();
        let v = self.factors().clone();
        let (n, k) = v.shape();
        // ψ applied row-by-row with the exact evaluation-mode semantics of
        // the graph forward (no dropout).
        let mut v_hat = Matrix::zeros(n, k);
        for r in 0..n {
            let row = self.transform().eval(params, v.row(r));
            v_hat.row_mut(r).copy_from_slice(&row);
        }
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let h = self.transform_weight().map(|m| m.col(0));
        FrozenModel::from_parts(
            self.bias(),
            self.linear_weights().col(0),
            v,
            SecondOrder::metric(v_hat, q, h, self.distance()),
        )
    }
}

impl Freeze for FactorizationMachine {
    fn freeze(&self) -> FrozenModel {
        FrozenModel::from_parts(
            self.bias(),
            self.linear_weights().to_vec(),
            self.factors().clone(),
            SecondOrder::Dot,
        )
    }
}

impl Freeze for TransFm {
    fn freeze(&self) -> FrozenModel {
        FrozenModel::from_parts(
            self.bias(),
            self.linear_weights().col(0),
            self.factors().clone(),
            SecondOrder::Translated { v_trans: self.translations().clone() },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_core::GmlFmConfig;
    use gmlfm_data::Instance;
    use gmlfm_models::fm::FmConfig;
    use gmlfm_models::transfm::TransFmConfig;
    use gmlfm_train::Scorer;

    #[test]
    fn frozen_gmlfm_matches_graph_predictions_at_init() {
        for cfg in [
            GmlFmConfig::mahalanobis(6),
            GmlFmConfig::dnn(6, 2),
            GmlFmConfig::euclidean_plain(6),
            GmlFmConfig::mahalanobis(6).without_weight(),
        ] {
            let model = GmlFm::new(30, &cfg.with_seed(13));
            let frozen = model.freeze();
            let inst = Instance::new(vec![2, 11, 27], 1.0);
            let graph = model.score_one(&inst);
            let served = frozen.predict(&inst);
            assert!(
                (graph - served).abs() <= 1e-9 * graph.abs().max(1.0),
                "{:?}: graph {graph} vs frozen {served}",
                model.config().transform
            );
        }
    }

    #[test]
    fn frozen_fm_matches_predict_one() {
        let fm = FactorizationMachine::new(25, FmConfig { k: 5, ..FmConfig::default() });
        let frozen = fm.freeze();
        let inst = Instance::new(vec![1, 9, 20], 1.0);
        assert!((frozen.predict(&inst) - fm.predict_one(&inst)).abs() < 1e-12);
    }

    #[test]
    fn frozen_transfm_matches_graph_predictions() {
        let model = TransFm::new(24, &TransFmConfig { k: 5, seed: 21 });
        let frozen = model.freeze();
        let inst = Instance::new(vec![0, 9, 19], 1.0);
        let graph = model.score_one(&inst);
        let served = frozen.predict(&inst);
        assert!((graph - served).abs() <= 1e-9 * graph.abs().max(1.0), "{graph} vs {served}");
    }

    #[test]
    fn freezing_is_a_snapshot_not_a_view() {
        let mut model = GmlFm::new(20, &GmlFmConfig::mahalanobis(4).with_seed(2));
        let frozen = model.freeze();
        let inst = Instance::new(vec![1, 8, 15], 1.0);
        let before = frozen.predict(&inst);
        // Perturb the live model; the frozen copy must not move.
        let ids: Vec<_> = model.params().iter().map(|(id, _)| id).collect();
        for id in ids {
            model.params_mut().get_mut(id).map_inplace(|x| x + 1.0);
        }
        assert_eq!(frozen.predict(&inst), before);
        assert!((model.score_one(&inst) - before).abs() > 1e-6);
    }
}
