//! The frozen model: plain matrices, no graph, no tape.
//!
//! [`FrozenModel`] is the serving-side representation of any trained
//! second-order model in this workspace. Freezing precomputes everything
//! the paper's efficient evaluation (Section 3.3, Eq. 10/11) needs:
//!
//! * the transformed embedding table `V̂ = ψ(V)` (identity for plain
//!   FMs, `V L` for GML-FM_md, the tanh MLP image for GML-FM_dnn) — so
//!   the Mahalanobis and DNN cases collapse into one code path, because
//!   `(vᵢ−vⱼ)ᵀLLᵀ(vᵢ−vⱼ) = ‖v̂ᵢ−v̂ⱼ‖²` with `v̂ = vL`;
//! * the per-feature squared norms `qᵢ = ‖v̂ᵢ‖²`.
//!
//! Both live in one packed [`HatQ`] table whose row `i` is `[v̂ᵢ | qᵢ]`:
//! a candidate's transformed embedding and its norm sit on the same
//! cache lines, so every per-candidate delta in the scoring hot loops is
//! a single linear scan of contiguous memory. (Parallel serving workers
//! stream these rows concurrently; the layout is what keeps them
//! memory-bound instead of latency-bound.)
//!
//! Prediction over a sparse [`Instance`] with `m` active fields then
//! evaluates the decoupled sums of Eq. 10/11 directly on the active
//! features — `O(m·k²)` and allocation-light — instead of replaying the
//! `O(m²)` pair loop through an autograd graph as
//! [`gmlfm_train::GraphModel::predict`] does. Distances without a
//! decoupled form (Manhattan, Chebyshev, cosine) and TransFM's
//! order-dependent translated distance fall back to a tape-free pairwise
//! loop, still far cheaper than the graph path.

use gmlfm_core::Distance;
use gmlfm_data::Instance;
use gmlfm_tensor::Matrix;
use gmlfm_train::Scorer;

use crate::kernel;
use crate::lowp::{LowPrec, Precision};
use crate::rank::TopNRanker;

/// The packed `V̂`/`q` table: row `i` holds the transformed embedding
/// `v̂ᵢ` immediately followed by its squared norm `qᵢ = ‖v̂ᵢ‖²`, as one
/// contiguous `n × (k+1)` row-major matrix.
///
/// Keeping the norm adjacent to its row means the scoring loops read
/// each candidate's entire second-order state in one linear scan — no
/// second indexed load into a separate `q` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct HatQ {
    table: Matrix,
}

impl HatQ {
    /// Packs a transformed embedding table and its per-row squared norms.
    ///
    /// # Panics
    /// Panics when `q.len() != v_hat.rows()`.
    pub fn new(v_hat: Matrix, q: Vec<f64>) -> Self {
        assert_eq!(q.len(), v_hat.rows(), "HatQ: |q| != rows of V̂");
        let (n, k) = v_hat.shape();
        let mut table = Matrix::zeros(n, k + 1);
        for (r, &qr) in q.iter().enumerate() {
            let row = table.row_mut(r);
            row[..k].copy_from_slice(v_hat.row(r));
            row[k] = qr;
        }
        Self { table }
    }

    /// Packs a transformed embedding table, computing `qᵢ = ‖v̂ᵢ‖²`.
    pub fn from_v_hat(v_hat: Matrix) -> Self {
        let q: Vec<f64> = (0..v_hat.rows()).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        Self::new(v_hat, q)
    }

    /// Number of features `n`.
    pub fn n(&self) -> usize {
        self.table.rows()
    }

    /// Embedding size `k` (the packed rows are `k + 1` wide).
    pub fn k(&self) -> usize {
        self.table.cols() - 1
    }

    /// The transformed embedding `v̂ᵢ` and its norm `qᵢ`, read from one
    /// contiguous row.
    #[inline]
    pub fn row(&self, i: usize) -> (&[f64], f64) {
        let row = self.table.row(i);
        let (v_hat, q) = row.split_at(row.len() - 1);
        (v_hat, q[0])
    }

    /// The transformed embedding `v̂ᵢ`.
    #[inline]
    pub fn v_hat(&self, i: usize) -> &[f64] {
        self.row(i).0
    }

    /// The squared norm `qᵢ = ‖v̂ᵢ‖²`.
    #[inline]
    pub fn q(&self, i: usize) -> f64 {
        self.row(i).1
    }

    /// Unpacks the `V̂` matrix (artifact serialisation).
    pub fn v_hat_matrix(&self) -> Matrix {
        let (n, k) = (self.n(), self.k());
        let mut out = Matrix::zeros(n, k);
        for r in 0..n {
            out.row_mut(r).copy_from_slice(self.v_hat(r));
        }
        out
    }

    /// Unpacks the norm vector `q` (artifact serialisation).
    pub fn q_vec(&self) -> Vec<f64> {
        (0..self.n()).map(|r| self.q(r)).collect()
    }
}

/// How the second-order interaction term is evaluated.
#[derive(Debug, Clone)]
pub enum SecondOrder {
    /// Vanilla FM: `Σ_{i<j} ⟨vᵢ, vⱼ⟩`, via the `O(k·m)` sum-of-squares
    /// trick.
    Dot,
    /// GML-FM family: `Σ_{i<j} w_ij · D(v̂ᵢ, v̂ⱼ)` with frozen transformed
    /// embeddings. Squared Euclidean uses the Eq. 10/11 decoupled sums;
    /// other distances use the pairwise loop.
    Metric {
        /// Packed `[v̂ᵢ | qᵢ]` table (see [`HatQ`]).
        hat: HatQ,
        /// Transformation weight vector `h` (Eq. 2); `None` fixes
        /// `w_ij = 1`.
        h: Option<Vec<f64>>,
        /// Distance over transformed embeddings (Section 3.5).
        distance: Distance,
    },
    /// TransFM: `Σ_{i<j} ‖(vᵢ + v'ᵢ) − vⱼ‖²` — order-dependent in the
    /// field positions, so always pairwise.
    Translated {
        /// Translation table `V' ∈ R^{n×k}`.
        v_trans: Matrix,
    },
}

impl SecondOrder {
    /// Builds the metric strategy from an unpacked `V̂` table and norm
    /// vector, packing them into the adjacent [`HatQ`] layout.
    pub fn metric(v_hat: Matrix, q: Vec<f64>, h: Option<Vec<f64>>, distance: Distance) -> Self {
        SecondOrder::Metric { hat: HatQ::new(v_hat, q), h, distance }
    }
}

/// A trained model frozen for serving: plain parameters, direct sparse
/// evaluation, no autograd machinery.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    /// Global bias `w₀`.
    pub(crate) w0: f64,
    /// First-order weights, one per feature.
    pub(crate) w: Vec<f64>,
    /// Factor table `V ∈ R^{n×k}`, contiguous row-major.
    pub(crate) v: Matrix,
    /// Second-order evaluation strategy.
    pub(crate) second: SecondOrder,
    /// Low-precision candidate tables (f32 + i8), built on demand by
    /// [`FrozenModel::with_precision`] and shared across clones.
    pub(crate) lowp: Option<std::sync::Arc<LowPrec>>,
    /// Default scan precision for top-N retrieval from this model.
    pub(crate) precision: Precision,
}

impl FrozenModel {
    /// Assembles a frozen model from raw parts. `w.len()` must equal
    /// `v.rows()`; the [`SecondOrder`] tables must share `v`'s shape.
    pub fn from_parts(w0: f64, w: Vec<f64>, v: Matrix, second: SecondOrder) -> Self {
        assert_eq!(w.len(), v.rows(), "FrozenModel: |w| != n");
        match &second {
            SecondOrder::Metric { hat, h, .. } => {
                assert_eq!((hat.n(), hat.k()), v.shape(), "FrozenModel: V̂ shape mismatch");
                if let Some(h) = h {
                    assert_eq!(h.len(), v.cols(), "FrozenModel: |h| != k");
                }
            }
            SecondOrder::Translated { v_trans } => {
                assert_eq!(v_trans.shape(), v.shape(), "FrozenModel: V' shape mismatch");
            }
            SecondOrder::Dot => {}
        }
        Self { w0, w, v, second, lowp: None, precision: Precision::F64 }
    }

    /// Sets the default top-N scan [`Precision`], building the
    /// low-precision candidate tables when `precision` needs them.
    ///
    /// Tables only exist for the decoupled squared-Euclidean metric
    /// form; for every other second-order strategy (plain dot FMs,
    /// pairwise-only distances, TransFM) the requested precision is
    /// remembered but scans silently stay exact f64. Once built, the
    /// tables ride along behind an `Arc`, so a model frozen with
    /// `Precision::F64` can still serve per-request `f32`/`i8`
    /// overrides cheaply after one `with_precision` call.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        if precision != Precision::F64 && self.lowp.is_none() {
            self.lowp = LowPrec::build(&self.v, &self.second);
        }
        self.precision = precision;
        self
    }

    /// The default top-N scan precision (see [`FrozenModel::with_precision`]).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The low-precision table set, when built and supported.
    pub(crate) fn lowp_tables(&self) -> Option<&LowPrec> {
        self.lowp.as_deref()
    }

    /// The f32 packed scoring table, when built (bench/test introspection).
    pub fn hat_q32(&self) -> Option<&crate::lowp::HatQ32> {
        self.lowp.as_deref().map(|lp| &lp.hat32)
    }

    /// The i8-quantized scoring table, when built (bench/test introspection).
    pub fn quant_hat(&self) -> Option<&crate::lowp::QuantHatQ> {
        self.lowp.as_deref().map(|lp| &lp.qhat)
    }

    /// Number of one-hot features `n`.
    pub fn n_features(&self) -> usize {
        self.v.rows()
    }

    /// Embedding size `k`.
    pub fn k(&self) -> usize {
        self.v.cols()
    }

    /// The second-order strategy in use.
    pub fn second_order_kind(&self) -> &SecondOrder {
        &self.second
    }

    /// Global bias `w₀` (artifact serialisation).
    pub fn bias(&self) -> f64 {
        self.w0
    }

    /// First-order weights, one per feature (artifact serialisation).
    pub fn linear_weights(&self) -> &[f64] {
        &self.w
    }

    /// The factor table `V ∈ R^{n×k}` (artifact serialisation).
    pub fn factors(&self) -> &Matrix {
        &self.v
    }

    /// Scores one instance: `w₀ + Σ_f w[x_f] + second-order`.
    pub fn predict(&self, inst: &Instance) -> f64 {
        self.predict_feats(&inst.feats)
    }

    /// [`FrozenModel::predict`] over raw feature indices.
    pub fn predict_feats(&self, feats: &[u32]) -> f64 {
        let mut out = self.w0;
        for &f in feats {
            out += self.w[f as usize];
        }
        out + self.second_order(feats)
    }

    /// Scores one instance using only the pairwise reference loops, never
    /// the decoupled sums. Exposed so tests can pin the decoupled paths
    /// against it.
    pub fn predict_pairwise(&self, inst: &Instance) -> f64 {
        let mut out = self.w0;
        for &f in &inst.feats {
            out += self.w[f as usize];
        }
        out + self.second_order_pairwise(&inst.feats)
    }

    /// Builds a top-N ranker over a template instance whose `item_slots`
    /// positions vary per candidate (see [`TopNRanker`]).
    pub fn ranker<'m>(&'m self, template: &[u32], item_slots: &[usize]) -> TopNRanker<'m> {
        TopNRanker::new(self, template, item_slots)
    }

    /// A serving-shaped synthetic model: weighted squared-Euclidean
    /// metric (the GML-FM_md form after freezing) over `n` one-hot
    /// features with embedding size `k`, all parameters drawn from
    /// seeded normals. Deterministic in `seed`.
    ///
    /// This is the shared fixture for benches, examples and cross-crate
    /// tests that need catalogue-scale scoring without paying for
    /// training — retrieval and serving costs are independent of the
    /// parameter values.
    pub fn synthetic_metric(n: usize, k: usize, seed: u64) -> Self {
        Self::synthetic_metric_damped(n, k, seed, 0..0, 1.0)
    }

    /// [`FrozenModel::synthetic_metric`] with the parameter rows of the
    /// `damped` feature range scaled by `factor` — the ANN-benchmark
    /// shape of a *trained* model.
    ///
    /// With fully iid random parameters every item's private id
    /// embedding carries as much score variance as the shared attribute
    /// embeddings, i.e. most of each score is per-item noise that no
    /// coarse structure (and no recommender) could predict. Training
    /// does the opposite: the score mass concentrates on generalising
    /// structure shared across items. Damping the item-id block (factor
    /// `0.5` quarters its variance share) reproduces that shape without
    /// paying for training, which is what retrieval-recall measurements
    /// should be run against.
    pub fn synthetic_metric_damped(
        n: usize,
        k: usize,
        seed: u64,
        damped: std::ops::Range<usize>,
        factor: f64,
    ) -> Self {
        let mut rng = gmlfm_tensor::seeded_rng(seed);
        let mut v = gmlfm_tensor::init::normal(&mut rng, n, k, 0.0, 0.3);
        let mut v_hat = gmlfm_tensor::init::normal(&mut rng, n, k, 0.0, 0.3);
        let h = Some(gmlfm_tensor::init::normal(&mut rng, 1, k, 0.0, 0.3).into_vec());
        let mut w = gmlfm_tensor::init::normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        for r in damped {
            for x in v.row_mut(r) {
                *x *= factor;
            }
            for x in v_hat.row_mut(r) {
                *x *= factor;
            }
            w[r] *= factor;
        }
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        Self::from_parts(0.1, w, v, SecondOrder::metric(v_hat, q, h, Distance::SquaredEuclidean))
    }

    /// The second-order term for a set of active features, choosing the
    /// cheapest exact evaluation.
    ///
    /// The weighted Eq. 10/11 decoupled form costs `O(m·k²)` against the
    /// pairwise loop's `O(m²·k)`: the decoupling is the right call in the
    /// paper's many-active-features regime (`m > k`), while the sparse
    /// one-hot instances the datasets produce (`m` of a few fields) are
    /// cheaper — and allocation-free — through the pair loop. Both are
    /// exact, so the switch is purely a cost model.
    pub(crate) fn second_order(&self, feats: &[u32]) -> f64 {
        match &self.second {
            SecondOrder::Dot => self.dot_decoupled(feats),
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } => match h {
                Some(h) if feats.len() > self.k() => self.metric_decoupled_weighted(feats, hat, h),
                Some(_) => self.second_order_pairwise(feats),
                None => self.metric_decoupled_unweighted(feats, hat),
            },
            _ => self.second_order_pairwise(feats),
        }
    }

    /// The Eq. 10/11 decoupled evaluation, forced (no size heuristic).
    /// Exposed so tests can pin it against the pairwise reference in the
    /// small-`m` regime too.
    pub fn second_order_decoupled(&self, feats: &[u32]) -> f64 {
        match &self.second {
            SecondOrder::Dot => self.dot_decoupled(feats),
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } => match h {
                Some(h) => self.metric_decoupled_weighted(feats, hat, h),
                None => self.metric_decoupled_unweighted(feats, hat),
            },
            _ => self.second_order_pairwise(feats),
        }
    }

    /// Pairwise reference evaluation of the second-order term.
    pub(crate) fn second_order_pairwise(&self, feats: &[u32]) -> f64 {
        let mut out = 0.0;
        match &self.second {
            SecondOrder::Dot => {
                for (p, &fi) in feats.iter().enumerate() {
                    for &fj in &feats[p + 1..] {
                        out += dot(self.v.row(fi as usize), self.v.row(fj as usize));
                    }
                }
            }
            SecondOrder::Metric { hat, h, distance } => {
                for (p, &fi) in feats.iter().enumerate() {
                    for &fj in &feats[p + 1..] {
                        let d = distance.eval(hat.v_hat(fi as usize), hat.v_hat(fj as usize));
                        out += self.pair_weight(h.as_deref(), fi, fj) * d;
                    }
                }
            }
            SecondOrder::Translated { v_trans } => {
                // TransFM pairs are ordered: (vᵢ + v'ᵢ) vs vⱼ for i < j in
                // field-position order.
                for (p, &fi) in feats.iter().enumerate() {
                    for &fj in &feats[p + 1..] {
                        out += self.translated_pair(v_trans, fi, fj);
                    }
                }
            }
        }
        out
    }

    /// One ordered TransFM pair: `‖(vᵢ + v'ᵢ) − vⱼ‖²`.
    pub(crate) fn translated_pair(&self, v_trans: &Matrix, fi: u32, fj: u32) -> f64 {
        let vi = self.v.row(fi as usize);
        let ti = v_trans.row(fi as usize);
        let vj = self.v.row(fj as usize);
        vi.iter()
            .zip(ti)
            .zip(vj)
            .map(|((a, t), b)| {
                let diff = a + t - b;
                diff * diff
            })
            .sum::<f64>()
    }

    /// `w_ij = hᵀ(vᵢ ⊙ vⱼ)`, or 1 without the transformation weight.
    pub(crate) fn pair_weight(&self, h: Option<&[f64]>, fi: u32, fj: u32) -> f64 {
        match h {
            Some(h) => {
                let (vi, vj) = (self.v.row(fi as usize), self.v.row(fj as usize));
                vi.iter().zip(vj).zip(h).map(|((a, b), hv)| a * b * hv).sum()
            }
            None => 1.0,
        }
    }

    /// Vanilla FM sum-of-squares trick: `½ Σ_d [(Σ_f v_fd)² − Σ_f v_fd²]`.
    fn dot_decoupled(&self, feats: &[u32]) -> f64 {
        let k = self.k();
        let mut pair = 0.0;
        for d in 0..k {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for &f in feats {
                let vfd = self.v[(f as usize, d)];
                s += vfd;
                s2 += vfd * vfd;
            }
            pair += s * s - s2;
        }
        0.5 * pair
    }

    /// Accumulates the Eq. 10/11 partial sums over a feature set:
    /// `a = Σ v_f`, `b = Σ q_f v_f`, `C = Σ v_f v̂_fᵀ`. Shared by the
    /// decoupled evaluator and the ranker's wide-context state.
    pub(crate) fn metric_partials(&self, feats: &[u32], hat: &HatQ) -> (Vec<f64>, Vec<f64>, Matrix) {
        let k = self.k();
        let mut a = vec![0.0; k];
        let mut b = vec![0.0; k];
        let mut c = Matrix::zeros(k, k);
        for &f in feats {
            let f = f as usize;
            let vf = self.v.row(f);
            let (vhf, qf) = hat.row(f);
            for d in 0..k {
                a[d] += vf[d];
                b[d] += qf * vf[d];
            }
            for (r, &vfr) in vf.iter().enumerate() {
                if vfr == 0.0 {
                    continue;
                }
                let c_row = c.row_mut(r);
                for (slot, &vh) in c_row.iter_mut().zip(vhf) {
                    *slot += vfr * vh;
                }
            }
        }
        (a, b, c)
    }

    /// Eq. 10/11 over the active features, unified through `V̂`:
    /// `f = Σ_d h_d a_d b_d − Σ_f v_fᵀ diag(h) C v̂_f` with
    /// `a = Σ v_f`, `b = Σ q_f v_f`, `C = Σ v_f v̂_fᵀ`.
    fn metric_decoupled_weighted(&self, feats: &[u32], hat: &HatQ, h: &[f64]) -> f64 {
        let k = self.k();
        let (a, b, c) = self.metric_partials(feats, hat);
        let first: f64 = h.iter().zip(&a).zip(&b).map(|((hv, av), bv)| hv * av * bv).sum();
        let mut second = 0.0;
        let mut cv = vec![0.0; k];
        for &f in feats {
            let f = f as usize;
            let vf = self.v.row(f);
            let vhf = hat.v_hat(f);
            for (r, slot) in cv.iter_mut().enumerate() {
                *slot = dot(c.row(r), vhf);
            }
            second += vf.iter().zip(h).zip(&cv).map(|((vv, hv), cvv)| vv * hv * cvv).sum::<f64>();
        }
        first - second
    }

    /// The `w_ij = 1` special case: `Σ_{i<j} ‖v̂ᵢ−v̂ⱼ‖² = m·u − ‖s‖²`
    /// with `u = Σ q_f` and `s = Σ v̂_f` — `O(m·k)`.
    fn metric_decoupled_unweighted(&self, feats: &[u32], hat: &HatQ) -> f64 {
        let k = self.k();
        let mut s = vec![0.0; k];
        let mut u = 0.0;
        for &f in feats {
            let (vhf, qf) = hat.row(f as usize);
            u += qf;
            for (slot, &vh) in s.iter_mut().zip(vhf) {
                *slot += vh;
            }
        }
        feats.len() as f64 * u - dot(&s, &s)
    }
}

impl Scorer for FrozenModel {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        crate::batch::score_chunked_par(
            self,
            instances,
            gmlfm_train::EVAL_CHUNK_SIZE,
            gmlfm_par::Parallelism::auto(),
        )
    }
}

/// Workspace-wide dot product for the serving paths: the chunked
/// [`kernel::dot`]. Every scoring route (decoupled sums, cross deltas,
/// probe geometry, stored `q` norms) shares this one definition, so
/// precomputed norms and live scans always agree bit-for-bit.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernel::dot(a, b)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;

    pub(crate) fn random_metric_model(
        n: usize,
        k: usize,
        weighted: bool,
        distance: Distance,
        seed: u64,
    ) -> FrozenModel {
        let mut rng = seeded_rng(seed);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_hat = normal(&mut rng, n, k, 0.0, 0.5);
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let h = weighted.then(|| normal(&mut rng, 1, k, 0.0, 0.5).into_vec());
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        FrozenModel::from_parts(0.37, w, v, SecondOrder::metric(v_hat, q, h, distance))
    }

    #[test]
    fn packed_table_round_trips_v_hat_and_q() {
        let mut rng = seeded_rng(4);
        let v_hat = normal(&mut rng, 9, 5, 0.0, 0.7);
        let q: Vec<f64> = (0..9).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let hat = HatQ::new(v_hat.clone(), q.clone());
        assert_eq!(hat.n(), 9);
        assert_eq!(hat.k(), 5);
        for (r, &qr) in q.iter().enumerate() {
            assert_eq!(hat.v_hat(r), v_hat.row(r));
            assert_eq!(hat.q(r), qr);
            let (row_v, row_q) = hat.row(r);
            assert_eq!(row_v, v_hat.row(r));
            assert_eq!(row_q, qr);
        }
        assert_eq!(hat.v_hat_matrix(), v_hat);
        assert_eq!(hat.q_vec(), q);
        // And the norm-computing constructor agrees bit-for-bit with the
        // shared scoring kernel's dot product.
        assert_eq!(HatQ::from_v_hat(v_hat.clone()).q_vec(), q);
    }

    #[test]
    fn decoupled_paths_match_pairwise_reference() {
        for weighted in [false, true] {
            for seed in 0..10 {
                let model = random_metric_model(40, 6, weighted, Distance::SquaredEuclidean, seed);
                // Below the m > k crossover (heuristic may route pairwise)…
                let small = Instance::new(vec![1, 7, 19, 33], 1.0);
                // …and above it (decoupled is the asymptotic winner).
                let large = Instance::new(vec![0, 3, 5, 8, 13, 17, 21, 26, 31, 38], 1.0);
                for inst in [&small, &large] {
                    let auto = model.predict(inst);
                    let slow = model.predict_pairwise(inst);
                    let forced = model.second_order_decoupled(&inst.feats)
                        + model.w0
                        + inst.feats.iter().map(|&f| model.w[f as usize]).sum::<f64>();
                    let tol = 1e-9 * slow.abs().max(1.0);
                    assert!(
                        (auto - slow).abs() <= tol && (forced - slow).abs() <= tol,
                        "weighted={weighted} seed={seed} m={}: auto {auto} forced {forced} vs {slow}",
                        inst.feats.len()
                    );
                }
            }
        }
    }

    #[test]
    fn single_field_has_no_pair_term() {
        let model = random_metric_model(10, 4, true, Distance::SquaredEuclidean, 3);
        let inst = Instance::new(vec![4], 1.0);
        let expected = model.w0 + model.w[4];
        assert!((model.predict(&inst) - expected).abs() < 1e-9);
    }

    #[test]
    fn non_euclidean_distances_use_pairwise_exactly() {
        for distance in [Distance::Manhattan, Distance::Chebyshev, Distance::Cosine] {
            let model = random_metric_model(20, 4, true, distance, 5);
            let inst = Instance::new(vec![0, 9, 17], 1.0);
            assert_eq!(model.predict(&inst), model.predict_pairwise(&inst));
        }
    }

    #[test]
    fn dot_trick_matches_pairwise() {
        let mut rng = seeded_rng(11);
        let v = normal(&mut rng, 25, 5, 0.0, 0.4);
        let w = normal(&mut rng, 1, 25, 0.0, 0.1).into_vec();
        let model = FrozenModel::from_parts(-0.2, w, v, SecondOrder::Dot);
        let inst = Instance::new(vec![2, 8, 14, 21], 1.0);
        let fast = model.predict(&inst);
        let slow = model.predict_pairwise(&inst);
        assert!((fast - slow).abs() <= 1e-9 * slow.abs().max(1.0), "{fast} vs {slow}");
    }

    #[test]
    fn scorer_matches_predict_across_chunks() {
        let model = random_metric_model(30, 4, true, Distance::SquaredEuclidean, 7);
        let insts: Vec<Instance> = (0..1100)
            .map(|i| Instance::new(vec![i % 30, (i + 7) % 30, (i + 19) % 30], 1.0))
            .collect();
        let batched = model.scores(&insts);
        for (inst, got) in insts.iter().zip(&batched) {
            assert_eq!(*got, model.predict(inst));
        }
    }

    #[test]
    #[should_panic(expected = "|w| != n")]
    fn mismatched_parts_are_rejected() {
        let v = Matrix::zeros(4, 2);
        let _ = FrozenModel::from_parts(0.0, vec![0.0; 3], v, SecondOrder::Dot);
    }
}
