//! Low-precision candidate tables: the opt-in `f32` and `i8` copies of
//! the packed [`HatQ`] scoring state.
//!
//! The serving hot loop is memory-bound: at 1M items and `k = 8` the
//! f64 `[v̂ᵢ | qᵢ]` table alone is 72 MB, and every top-N request
//! streams all of it. Narrower tables trade per-candidate precision for
//! bandwidth:
//!
//! * [`HatQ32`] — an f32 copy of the packed table (plus an f32 copy of
//!   `V` for the weighted pair-weight dot), halving bytes scanned.
//!   Scores computed from it carry ~1e-6 relative error, enough to
//!   reorder near-ties; see the README "Kernels" section for the
//!   tie-order caveat.
//! * [`QuantHatQ`] — an i8 affine quantization of `v̂` (and `V`) with
//!   per-row scale and zero point: `real ≈ lo + scale·(code + 128)`,
//!   `scale = (hi − lo)/255`, so reconstruction error is at most
//!   `scale/2` per coordinate. At `k = 8` this is ~7x smaller than the
//!   f64 table. i8 scans are used as a *probe* pass only — survivors
//!   are re-scored by the exact f64 ranker, so returned scores stay
//!   bitwise the model's (the same contract the IVF index keeps).
//!
//! Which table a request uses is the [`Precision`] knob, settable at
//! freeze time (`Engine::builder().precision(..)`) and per request
//! (`TopNRequest`). Tables are built once by
//! [`FrozenModel::with_precision`](crate::FrozenModel::with_precision)
//! and shared behind an `Arc`, so cloning a model (snapshot hot-swap,
//! per-shard workers) never copies them.

use std::sync::Arc;

use gmlfm_core::Distance;

use crate::frozen::{HatQ, SecondOrder};
use crate::kernel;

/// Numeric width of the candidate-scan tables used by top-N retrieval.
///
/// This is a *scan* precision, not a model precision: first-order
/// weights, context partials, and every non-top-N scoring path stay
/// f64. See the variants for the exactness contract of each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Exact f64 scan (the default). Returned scores are bitwise the
    /// model's.
    #[default]
    F64,
    /// f32 candidate tables. Returned scores carry ~1e-6 relative
    /// error and near-ties may reorder; no re-rank.
    F32,
    /// i8-quantized probe scan with exact f64 re-rank of the
    /// survivors. Returned scores are bitwise the model's; items whose
    /// quantized score falls outside the re-rank pool may be missed
    /// (measured as recall in `BENCH_kernel.json`).
    I8,
}

impl Precision {
    /// Stable wire/artifact name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::I8 => "i8",
        }
    }

    /// Inverse of [`Precision::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            "i8" => Some(Precision::I8),
            _ => None,
        }
    }
}

/// f32 copy of the packed `[v̂ᵢ | qᵢ]` table, same row layout as
/// [`HatQ`].
#[derive(Debug, Clone)]
pub struct HatQ32 {
    data: Vec<f32>,
    n: usize,
    k: usize,
}

impl HatQ32 {
    /// Narrows a packed f64 table to f32.
    pub fn from_hat(hat: &HatQ) -> Self {
        let (n, k) = (hat.n(), hat.k());
        let mut data = Vec::with_capacity(n * (k + 1));
        for i in 0..n {
            let (vh, q) = hat.row(i);
            data.extend(vh.iter().map(|&x| x as f32));
            data.push(q as f32);
        }
        Self { data, n, k }
    }

    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Embedding size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row `i` as `(v̂ᵢ, qᵢ)`, one contiguous read.
    #[inline]
    pub fn row(&self, i: usize) -> (&[f32], f32) {
        let w = self.k + 1;
        let row = &self.data[i * w..(i + 1) * w];
        (&row[..self.k], row[self.k])
    }

    /// Table footprint in bytes (bench reporting).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// i8 affine quantization of an `n × w` row-major table with per-row
/// scale and zero point.
///
/// Row `i` reconstructs as `lo[i] + scale[i]·(code + 128)` with codes
/// in `[-128, 127]`, so each coordinate is off by at most `scale[i]/2`
/// (`scale = (rowmax − rowmin)/255`). Constant rows get `scale = 0`
/// and reconstruct exactly.
#[derive(Debug, Clone)]
pub struct QuantRows {
    codes: Vec<i8>,
    lo: Vec<f32>,
    scale: Vec<f32>,
    n: usize,
    w: usize,
}

impl QuantRows {
    /// Quantizes `n` rows of width `w`; `fill(i, row)` writes row `i`
    /// into the provided `w`-length scratch.
    pub(crate) fn from_rows(n: usize, w: usize, mut fill: impl FnMut(usize, &mut [f64])) -> Self {
        let mut codes = Vec::with_capacity(n * w);
        let mut lo = Vec::with_capacity(n);
        let mut scale = Vec::with_capacity(n);
        let mut row = vec![0.0f64; w];
        for i in 0..n {
            fill(i, &mut row);
            let (mut rlo, mut rhi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &x in &row {
                rlo = rlo.min(x);
                rhi = rhi.max(x);
            }
            if !rlo.is_finite() {
                (rlo, rhi) = (0.0, 0.0);
            }
            let s = (rhi - rlo) / 255.0;
            lo.push(rlo as f32);
            scale.push(s as f32);
            if s == 0.0 {
                codes.extend(std::iter::repeat_n(-128i8, row.len()));
            } else {
                codes.extend(
                    row.iter()
                        .map(|&x| ((((x - rlo) / s).round() as i32) - 128).clamp(-128, 127) as i8),
                );
            }
        }
        Self { codes, lo, scale, n, w }
    }

    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row width `w`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Reconstructs row `i` into `out[..w]`.
    #[inline]
    pub fn dequant_into(&self, i: usize, out: &mut [f32]) {
        kernel::dequant_into(&self.codes[i * self.w..(i + 1) * self.w], self.lo[i], self.scale[i], out);
    }

    /// The largest per-row quantization step (bound on coordinate
    /// error: `max_step()/2`).
    pub fn max_step(&self) -> f32 {
        self.scale.iter().fold(0.0f32, |m, &s| m.max(s))
    }

    /// Table footprint in bytes (codes + per-row parameters).
    pub fn bytes(&self) -> usize {
        self.codes.len() + (self.lo.len() + self.scale.len()) * std::mem::size_of::<f32>()
    }
}

/// i8 quantization of the candidate scoring state: one quantized row
/// per feature holding `v̂ᵢ` — and, for weighted models, `vᵢ` packed
/// into the *same* row sharing one scale/zero pair (halving the
/// per-row parameter overhead; that shared pair is what keeps the k=8
/// weighted table 4x+ under the f64 tables it replaces) — plus per-row
/// f32 norms `qᵢ` (4 bytes/row, not worth quantizing).
#[derive(Debug, Clone)]
pub struct QuantHatQ {
    rows: QuantRows,
    q: Vec<f32>,
    k: usize,
    /// Whether each row is `[v̂ᵢ | vᵢ]` (width `2k`) or just `v̂ᵢ`.
    paired: bool,
}

impl QuantHatQ {
    /// Quantizes a packed f64 table, packing `v` rows alongside when
    /// given (weighted models need them for the pair-weight dot).
    pub fn from_tables(hat: &HatQ, v: Option<&gmlfm_tensor::Matrix>) -> Self {
        let (n, k) = (hat.n(), hat.k());
        let paired = v.is_some();
        let w = if paired { 2 * k } else { k };
        let rows = QuantRows::from_rows(n, w, |i, row| {
            row[..k].copy_from_slice(hat.v_hat(i));
            if let Some(v) = v {
                row[k..].copy_from_slice(v.row(i));
            }
        });
        let q = (0..n).map(|i| hat.q(i) as f32).collect();
        Self { rows, q, k, paired }
    }

    /// Number of rows `n`.
    pub fn n(&self) -> usize {
        self.rows.n()
    }

    /// Embedding size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether rows also carry the quantized `vᵢ` half.
    pub fn paired(&self) -> bool {
        self.paired
    }

    /// Width of the scratch row [`QuantHatQ::dequant_into`] fills
    /// (`k`, or `2k` when [`QuantHatQ::paired`]).
    pub fn row_width(&self) -> usize {
        self.rows.w()
    }

    /// Reconstructs row `i` into `out[..row_width()]`: `v̂ᵢ` in
    /// `out[..k]`, then `vᵢ` in `out[k..]` when paired.
    #[inline]
    pub fn dequant_into(&self, i: usize, out: &mut [f32]) {
        self.rows.dequant_into(i, out);
    }

    /// The f32 norm `qᵢ`.
    #[inline]
    pub fn q(&self, i: usize) -> f32 {
        self.q[i]
    }

    /// Largest per-row quantization step.
    pub fn max_step(&self) -> f32 {
        self.rows.max_step()
    }

    /// Table footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.rows.bytes() + self.q.len() * std::mem::size_of::<f32>()
    }
}

/// Every low-precision table a frozen model carries, built once by
/// [`FrozenModel::with_precision`](crate::FrozenModel::with_precision)
/// and shared behind an [`Arc`].
///
/// `v32`/`qv` (the narrowed `V` used by the weighted pair-weight dot)
/// are only built for weighted models; `h32` narrows the transformation
/// weights once so the scan never re-converts them.
#[derive(Debug, Clone)]
pub struct LowPrec {
    pub(crate) hat32: HatQ32,
    pub(crate) qhat: QuantHatQ,
    pub(crate) v32: Option<Vec<f32>>,
    pub(crate) h32: Option<Vec<f32>>,
}

impl LowPrec {
    /// Builds the full table set for a metric model. Returns `None`
    /// when the model has no decoupled squared-Euclidean form (plain
    /// dot-product FMs, pairwise-only distances, TransFM) — those paths
    /// always scan in f64.
    pub(crate) fn build(v: &gmlfm_tensor::Matrix, second: &SecondOrder) -> Option<Arc<Self>> {
        let SecondOrder::Metric { hat, h, distance } = second else { return None };
        if *distance != Distance::SquaredEuclidean {
            return None;
        }
        let weighted = h.is_some();
        Some(Arc::new(Self {
            hat32: HatQ32::from_hat(hat),
            qhat: QuantHatQ::from_tables(hat, weighted.then_some(v)),
            v32: weighted.then(|| v.as_slice().iter().map(|&x| x as f32).collect()),
            h32: h.as_ref().map(|h| h.iter().map(|&x| x as f32).collect()),
        }))
    }

    /// Row `j` of the narrowed `V` table (weighted models only).
    #[inline]
    pub(crate) fn v32_row(&self, j: usize) -> Option<&[f32]> {
        let k = self.hat32.k();
        self.v32.as_ref().map(|v| &v[j * k..(j + 1) * k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::tests::random_metric_model;

    #[test]
    fn precision_names_round_trip() {
        for p in [Precision::F64, Precision::F32, Precision::I8] {
            assert_eq!(Precision::from_name(p.name()), Some(p));
        }
        assert_eq!(Precision::from_name("f16"), None);
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn hatq32_narrows_rows_exactly() {
        let model = random_metric_model(12, 5, true, Distance::SquaredEuclidean, 9);
        let SecondOrder::Metric { hat, .. } = model.second_order_kind() else { unreachable!() };
        let t32 = HatQ32::from_hat(hat);
        assert_eq!((t32.n(), t32.k()), (hat.n(), hat.k()));
        for i in 0..hat.n() {
            let (vh, q) = hat.row(i);
            let (vh32, q32) = t32.row(i);
            assert_eq!(q32, q as f32);
            for (a, b) in vh.iter().zip(vh32) {
                assert_eq!(*b, *a as f32);
            }
        }
    }

    #[test]
    fn quantized_rows_reconstruct_within_half_a_step() {
        // Weighted: rows pack [v̂ | v] under one shared scale.
        let model = random_metric_model(20, 7, true, Distance::SquaredEuclidean, 11);
        let SecondOrder::Metric { hat, .. } = model.second_order_kind() else { unreachable!() };
        let qt = QuantHatQ::from_tables(hat, Some(model.factors()));
        assert!(qt.paired());
        assert_eq!(qt.row_width(), 14);
        let mut out = vec![0.0f32; qt.row_width()];
        for i in 0..qt.n() {
            qt.dequant_into(i, &mut out);
            let originals = hat.v_hat(i).iter().chain(model.factors().row(i));
            for (orig, deq) in originals.zip(&out) {
                assert!(
                    (orig - *deq as f64).abs() <= 0.5 * qt.max_step() as f64 + 1e-6,
                    "row {i}: {orig} vs {deq}"
                );
            }
        }
    }

    #[test]
    fn constant_rows_quantize_exactly() {
        let rows = QuantRows::from_rows(3, 4, |i, row| {
            row.fill(match i {
                0 => 0.25,
                1 => -1.5,
                _ => 0.0,
            })
        });
        let mut out = vec![0.0f32; 4];
        for (i, want) in [(0usize, 0.25f32), (1, -1.5), (2, 0.0)] {
            rows.dequant_into(i, &mut out);
            assert!(out.iter().all(|&x| x == want), "row {i}: {out:?}");
        }
        assert_eq!(rows.max_step(), 0.0);
    }

    #[test]
    fn build_gates_on_decoupled_metric_form() {
        let se = random_metric_model(8, 3, true, Distance::SquaredEuclidean, 1);
        assert!(LowPrec::build(se.factors(), se.second_order_kind()).is_some());
        let man = random_metric_model(8, 3, true, Distance::Manhattan, 1);
        assert!(LowPrec::build(man.factors(), man.second_order_kind()).is_none());
        let unweighted = random_metric_model(8, 3, false, Distance::SquaredEuclidean, 1);
        let lp = LowPrec::build(unweighted.factors(), unweighted.second_order_kind()).unwrap();
        assert!(lp.v32.is_none() && lp.h32.is_none() && !lp.qhat.paired());
    }

    #[test]
    fn i8_tables_are_at_least_4x_smaller_than_f64() {
        let model = random_metric_model(512, 8, true, Distance::SquaredEuclidean, 3);
        let lp = LowPrec::build(model.factors(), model.second_order_kind()).unwrap();
        // The f64 state the i8 probe replaces: the packed n×(k+1) HatQ
        // table plus the n×k V table the weighted delta reads.
        let f64_bytes = (512 * 9 + 512 * 8) * std::mem::size_of::<f64>();
        let i8_bytes = lp.qhat.bytes();
        assert!(i8_bytes * 4 <= f64_bytes, "i8 {i8_bytes} vs f64 {f64_bytes}");
    }
}
