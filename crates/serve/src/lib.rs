//! # gmlfm-serve
//!
//! Autograd-free serving for trained models: the production-side answer
//! to the paper's efficiency claim (Section 3.3).
//!
//! Training needs the tape — every batch builds a reverse-mode graph.
//! Serving does not: a trained model is just numbers, and the paper's
//! Eq. 10/11 decoupled sums evaluate its second-order term directly on a
//! sparse instance's active features. This crate freezes any supported
//! model into that form and routes all inference through it:
//!
//! * [`Freeze`] — extracts a [`FrozenModel`] from a trained
//!   [`gmlfm_core::GmlFm`] (all transform/distance/weight variants), a
//!   [`gmlfm_models::FactorizationMachine`], or a
//!   [`gmlfm_models::TransFm`]. Freezing precomputes `V̂ = ψ(V)` and the
//!   per-feature norms, so the Mahalanobis and DNN transforms cost the
//!   same at serving time.
//! * [`FrozenModel`] — tape-free scoring of sparse instances; implements
//!   [`gmlfm_train::Scorer`], so every evaluation protocol in
//!   `gmlfm-eval` consumes it unchanged. Batch scoring reuses
//!   [`gmlfm_train::EVAL_CHUNK_SIZE`] as its chunking unit and fans the
//!   chunks out across the `gmlfm-par` pool ([`batch::score_chunked_par`]);
//!   results are bit-identical to serial at every thread count, and
//!   `GMLFM_THREADS=1` forces the serial path. The precomputed tables
//!   live in the packed [`HatQ`] layout (`[v̂ᵢ | qᵢ]` rows), so each
//!   worker's candidate delta is one linear scan.
//! * [`TopNRanker`] — leave-one-out ranking with the context-side
//!   partial sums computed once per user and only an `O(k²)` (or `O(k)`)
//!   delta per candidate item; every distance, the order-dependent
//!   TransFM mode included, scores by item delta.
//! * [`topn`] — sharded top-N retrieval: per-shard bounded
//!   [`TopNHeap`]s (size `n`, threshold-rejecting) merged under the
//!   deterministic [`rank_cmp`] total order (score desc, item id asc),
//!   so a whole-catalogue request costs `O(C·k + C·log n)` instead of a
//!   full `O(C·log C)` sort — and returns the *identical* ranking.
//!
//! Parity with the autograd path is pinned to ≤1e-9 by the tests in this
//! crate and by `tests/frozen_parity.rs`; the `serve_speedup` bench in
//! `gmlfm-bench` measures the resulting wall-clock separation.

pub mod batch;
pub mod freeze;
pub mod frozen;
pub mod index;
pub mod kernel;
pub mod lowp;
pub mod rank;
pub mod topn;

pub use batch::{score_chunked, score_chunked_par};
pub use freeze::Freeze;
pub use frozen::{FrozenModel, HatQ, SecondOrder};
pub use index::{ItemFeatureSource, IvfBuildOptions, IvfIndex, RetrievalStrategy};
pub use lowp::{HatQ32, Precision, QuantHatQ};
pub use rank::{LowRanker, TopNRanker};
pub use topn::{
    exact_rerank, merge_sharded, rank_cmp, scan_top_n_prec, sharded_top_n, sharded_top_n_blocks, TopNHeap,
};
