//! Metric-space IVF index: sublinear top-N candidate generation over
//! the packed [`HatQ`] table, with exact re-ranking.
//!
//! The paper's serving-side claim is that a trained GML-FM collapses to
//! decoupled sums over frozen matrices. This module pushes that one
//! step further: for the squared-Euclidean metric modes, a candidate's
//! score against a *fixed context* is an **affine function of a
//! per-item vector** `φ(item)` that does not depend on the context at
//! all:
//!
//! ```text
//! score(item) = ctx_score + ⟨g(ctx), φ(item)⟩
//! ```
//!
//! * weighted metric (Eq. 10/11, transformation weight `h` present) —
//!   `φ = [t₀ | t₁ | t₂ | vec(t₃)]` of dimension `1 + 2k + k²`, with
//!   `t₀ = Σ_f w_f + second-order(item feats)`, `t₁ = Σ_f h⊙v_f`,
//!   `t₂ = Σ_f q_f·(h⊙v_f)`, `t₃ = Σ_f (h⊙v_f) v̂_fᵀ`, and
//!   `g = [1 | b | a | −2·vec(C)]` from the context partial sums
//!   `a = Σ v_i`, `b = Σ q_i v_i`, `C = Σ v_i v̂_iᵀ`
//!   (`FrozenModel::metric_partials`);
//! * unweighted metric — `φ = [t₀ | m | Σ q_f | Σ v̂_f]` of dimension
//!   `3 + k` and `g = [1 | u | |ctx| | −2s]` with `s = Σ v̂_i`,
//!   `u = Σ q_i`.
//!
//! That linearisation is what makes an inverted-file (IVF) index sound:
//! cluster the items by a compact clustering embedding, store each
//! cluster's **mean `φ̄_c`**, every member's **deviation norm
//! `‖φ(item) − φ̄_c‖`** and the cluster radius `r_c` (the members' max
//! norm), and both a cluster's and a member's best possible score are
//! bounded by Cauchy–Schwarz:
//!
//! ```text
//! score(item ∈ c) ≤ ctx_score + ⟨g, φ̄_c⟩ + ‖g‖·‖φ(item) − φ̄_c‖
//!                 ≤ ctx_score + ⟨g, φ̄_c⟩ + ‖g‖·r_c
//! ```
//!
//! A query ranks clusters by their centroid score `⟨g, φ̄_c⟩`, visits at
//! most `nprobe` of them best-centroid-first, skips any cluster whose
//! (numerically slackened) bound cannot strictly beat the current heap
//! threshold, skips any *member* whose tighter per-item norm bound
//! cannot either — one multiply against the stored norm, an order of
//! magnitude cheaper than scoring — and re-ranks every surviving member
//! **exactly** through the same [`TopNRanker`] the exhaustive path
//! uses. Returned scores are therefore bitwise the true model scores —
//! only the *candidate set* is approximate, and only through the
//! `nprobe` cap (with `nprobe ≥ n_clusters` the result is item-for-item
//! identical to the exhaustive scan: bound skips are sound, they never
//! drop an item that could have ranked).
//!
//! Modes without the decoupled squared-Euclidean form — vanilla-FM dot,
//! TransFM's translated distance, Manhattan/Chebyshev/cosine — have no
//! affine linearisation here; [`IvfIndex::build`] returns `None` for
//! them and callers fall back to the exact sharded-heap path.

use crate::frozen::{dot, FrozenModel, HatQ, SecondOrder};
use crate::lowp::Precision;
use crate::rank::rerank_pool;
#[allow(unused_imports)] // rustdoc links
use crate::rank::TopNRanker;
use crate::topn::{merge_sharded, TopNHeap};
use gmlfm_core::Distance;
use gmlfm_par::Parallelism;
use gmlfm_tensor::Matrix;

/// How a top-N request selects its candidates.
///
/// ## Approximation contract
///
/// Whatever the strategy, **returned scores are exact**: every returned
/// `(item, score)` pair comes out of the same delta-scan
/// [`TopNRanker`], bitwise identical to the exhaustive path's scores.
/// The strategies differ only in *which candidates are considered*:
///
/// * [`Exact`](RetrievalStrategy::Exact) scores every surviving
///   candidate — the PR-5 sharded bounded-heap path, item-for-item
///   identical to a full sort at every shard and thread count.
/// * [`Ivf`](RetrievalStrategy::Ivf) visits at most `nprobe` item
///   clusters (best upper bound first) and scores only their members,
///   so items whose cluster was not probed can be missed — the
///   *candidate set* is approximate, with measured recall reported in
///   `BENCH_ann.json`. `nprobe = None` uses the index's built-in
///   default; `nprobe ≥ n_clusters` makes the result exactly equal to
///   [`Exact`](RetrievalStrategy::Exact). Requests an index cannot
///   serve (candidate-restricted requests, catalogs below the index's
///   `min_candidates`, models without the metric linearisation) fall
///   back to [`Exact`](RetrievalStrategy::Exact) automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetrievalStrategy {
    /// Score every candidate (sharded bounded heaps) — exact candidate
    /// set, exact scores.
    #[default]
    Exact,
    /// IVF index retrieval: probe the best-bounded item clusters and
    /// re-rank their members exactly.
    Ivf {
        /// Maximum clusters to visit; `None` uses the index default.
        nprobe: Option<usize>,
    },
}

/// Per-item feature access the index builds from and scans with —
/// implemented by `gmlfm_service::Catalog` and, for tests and custom
/// pipelines, by `Vec<Vec<u32>>`.
pub trait ItemFeatureSource: Sync {
    /// Number of items (ids `0..item_count`).
    fn item_count(&self) -> usize;

    /// The item's feature group, in item-slot order.
    ///
    /// # Panics
    /// May panic when `item >= item_count()`.
    fn features_of(&self, item: u32) -> &[u32];

    /// Per-slot `(min, max)` feature id over the whole catalogue, or
    /// `None` when unknown (empty catalogue, ragged groups). The block
    /// scan uses this to decide which slots are compact attribute
    /// fields worth materialising dense delta tables for
    /// ([`TopNRanker::score_block`]); `None` only costs that
    /// optimisation. The default implementation scans every group —
    /// `O(items · slots)` — so sources that are asked repeatedly
    /// should cache (as `gmlfm_service::Catalog` does).
    fn slot_ranges(&self) -> Option<Vec<(u32, u32)>> {
        let n = self.item_count();
        if n == 0 {
            return None;
        }
        let mut ranges: Vec<(u32, u32)> = self.features_of(0).iter().map(|&f| (f, f)).collect();
        for item in 1..n as u32 {
            let feats = self.features_of(item);
            if feats.len() != ranges.len() {
                return None;
            }
            for (r, &f) in ranges.iter_mut().zip(feats) {
                r.0 = r.0.min(f);
                r.1 = r.1.max(f);
            }
        }
        Some(ranges)
    }
}

impl ItemFeatureSource for Vec<Vec<u32>> {
    fn item_count(&self) -> usize {
        self.len()
    }

    fn features_of(&self, item: u32) -> &[u32] {
        &self[item as usize]
    }
}

/// Build-time knobs of [`IvfIndex::build`]. `Default` is the serving
/// configuration the benches and the engine use.
#[derive(Debug, Clone)]
pub struct IvfBuildOptions {
    /// Number of clusters; `None` picks `4·√n` clamped to `[4, 2048]`.
    /// Denser than the classic `√n` because φ clusters on a handful of
    /// shared attribute fields: with fewer clusters than attribute
    /// combinations, combinations merge and the centroid ordering
    /// degrades measurably (recall at a fixed scan budget drops).
    pub clusters: Option<usize>,
    /// Default `nprobe` stored in the index; `None` sizes it from an
    /// item-scan budget of `max(2048, n/12)` items — roughly 8% of a
    /// large catalogue, proportionally deeper on small ones where the
    /// top-N tail is relatively fatter.
    pub nprobe: Option<usize>,
    /// Whole-catalogue requests over fewer surviving candidates than
    /// this serve exactly — below it the index bookkeeping costs more
    /// than it saves.
    pub min_candidates: usize,
    /// Lloyd iterations of the sample k-means.
    pub kmeans_iters: usize,
    /// Sample size per cluster for the k-means training sample.
    pub sample_per_cluster: usize,
}

impl Default for IvfBuildOptions {
    fn default() -> Self {
        Self { clusters: None, nprobe: None, min_candidates: 4096, kmeans_iters: 4, sample_per_cluster: 8 }
    }
}

/// Which affine linearisation the index was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Unweighted squared-Euclidean metric (`w_ij = 1`): `φ` of
    /// dimension `3 + k`.
    Unweighted,
    /// Weighted squared-Euclidean metric (Eq. 10/11): `φ` of dimension
    /// `1 + 2k + k²`.
    Weighted,
}

impl IndexKind {
    /// Stable name (artifact serialisation).
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Unweighted => "unweighted",
            IndexKind::Weighted => "weighted",
        }
    }

    /// Parses [`IndexKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "unweighted" => Some(IndexKind::Unweighted),
            "weighted" => Some(IndexKind::Weighted),
            _ => None,
        }
    }

    /// `φ` dimension for embedding size `k`.
    pub fn phi_dim(self, k: usize) -> usize {
        match self {
            IndexKind::Unweighted => 3 + k,
            IndexKind::Weighted => 1 + 2 * k + k * k,
        }
    }

    /// Clustering-embedding dimension for embedding size `k` (compact —
    /// the `k²` block of the weighted `φ` is summarised by its
    /// marginals, so the k-means passes stay cheap).
    fn psi_dim(self, k: usize) -> usize {
        match self {
            IndexKind::Unweighted => 3 + k,
            IndexKind::Weighted => 2 * k + 2,
        }
    }

    /// The linearisation a model supports, when it has one.
    pub fn of_model(model: &FrozenModel) -> Option<Self> {
        MetricTables::of(model).map(|tables| tables.kind())
    }
}

/// The model tables behind a supported linearisation, resolved once per
/// index entry point. Holding the resolved variant (rather than an
/// [`IndexKind`] tag looked up against the model again) makes the φ/ψ/g
/// kernels exhaustive matches: the weighted arms carry `h` by
/// construction, with no "weighted kind implies h" re-assertion.
#[derive(Clone, Copy)]
enum MetricTables<'m> {
    /// Unweighted squared-Euclidean metric (`w_ij = 1`).
    Unweighted { hat: &'m HatQ },
    /// Weighted squared-Euclidean metric (Eq. 10/11).
    Weighted { hat: &'m HatQ, h: &'m [f64] },
}

impl<'m> MetricTables<'m> {
    /// The metric tables of a model the index supports, or `None` when
    /// the model has no squared-Euclidean linearisation (callers then
    /// serve exactly).
    fn of(model: &'m FrozenModel) -> Option<Self> {
        match model.second_order_kind() {
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } => {
                Some(match h.as_deref() {
                    Some(h) => MetricTables::Weighted { hat, h },
                    None => MetricTables::Unweighted { hat },
                })
            }
            _ => None,
        }
    }

    /// The serialisable kind tag of these tables.
    fn kind(&self) -> IndexKind {
        match self {
            MetricTables::Unweighted { .. } => IndexKind::Unweighted,
            MetricTables::Weighted { .. } => IndexKind::Weighted,
        }
    }
}

/// The coarse item index: per-cluster member lists plus the `φ`-space
/// mean and radius that bound every member's possible score. See the
/// [module docs](self) for the math and [`IvfIndex::search`] for the
/// query path.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    kind: IndexKind,
    k: usize,
    n_items: usize,
    /// Member item ids per cluster, ascending. Every item appears in
    /// exactly one cluster; clusters are non-empty by construction
    /// (empty ones are dropped at build).
    members: Vec<Vec<u32>>,
    /// Per-member deviation norms `‖φ(item) − φ̄_c‖`, parallel to
    /// `members` — the per-item Cauchy–Schwarz bound the scan skips by.
    member_norms: Vec<Vec<f64>>,
    /// Per-cluster mean `φ̄_c`, one row per cluster.
    phi_mean: Matrix,
    /// Per-cluster radius `r_c = max_{item ∈ c} ‖φ(item) − φ̄_c‖` (the
    /// members' max deviation norm, kept denormalised for the
    /// cluster-level prune).
    radius: Vec<f64>,
    default_nprobe: usize,
    min_candidates: usize,
}

impl IvfIndex {
    /// Whether a model has the affine linearisation this index needs
    /// (squared-Euclidean metric second order, weighted or not).
    pub fn supports(model: &FrozenModel) -> bool {
        IndexKind::of_model(model).is_some()
    }

    /// Builds the index over every item of `items`, or `None` when the
    /// model has no metric linearisation (callers then serve exactly).
    ///
    /// The build is deterministic — sampling is strided, k-means
    /// initialisation is spread over the sample, and the parallel
    /// assignment pass is a pure per-item function — so the same model
    /// + items + options produce the same index at every thread count.
    pub fn build<S: ItemFeatureSource + ?Sized>(
        model: &FrozenModel,
        items: &S,
        opts: &IvfBuildOptions,
        par: Parallelism,
    ) -> Option<IvfIndex> {
        let tables = MetricTables::of(model)?;
        let kind = tables.kind();
        let n = items.item_count();
        if n == 0 {
            return None;
        }
        let k = model.k();
        let psi_dim = kind.psi_dim(k);
        let phi_dim = kind.phi_dim(k);
        let n_clusters = opts
            .clusters
            .unwrap_or_else(|| ((4.0 * (n as f64).sqrt()).round() as usize).clamp(4, 2048))
            .clamp(1, n);
        // Default probe depth from an item-scan budget: the per-item
        // noise component of a score is unclusterable, so small
        // catalogues need a proportionally deeper probe than large ones
        // (the top-N tail thins as n grows while cluster structure
        // stays put).
        let default_nprobe = opts
            .nprobe
            .unwrap_or_else(|| {
                let budget_items = (n / 12).max(2048);
                (budget_items * n_clusters).div_ceil(n)
            })
            .clamp(1, n_clusters);

        // 1. Strided ψ sample (deterministic, no RNG: item ids carry no
        //    order of their own, so a stride is as representative as a
        //    draw).
        let sample_n = (opts.sample_per_cluster * n_clusters).max(1024).min(n);
        let mut sample = Matrix::zeros(sample_n, psi_dim);
        for i in 0..sample_n {
            let item = (i as u64 * n as u64 / sample_n as u64) as u32;
            psi_into(model, &tables, items.features_of(item), sample.row_mut(i));
        }

        // 2. Sample k-means: centroids spread over the sample, a few
        //    Lloyd iterations, empty clusters reseeded to the farthest
        //    sample point.
        let mut centroids = Matrix::zeros(n_clusters, psi_dim);
        for c in 0..n_clusters {
            centroids.row_mut(c).copy_from_slice(sample.row(c * sample_n / n_clusters));
        }
        let mut assign = vec![0usize; sample_n];
        let mut dist = vec![0.0f64; sample_n];
        for _ in 0..opts.kmeans_iters {
            for i in 0..sample_n {
                let (best, d) = nearest(sample.row(i), &centroids, 0..n_clusters);
                assign[i] = best;
                dist[i] = d;
            }
            let mut counts = vec![0usize; n_clusters];
            let mut sums = Matrix::zeros(n_clusters, psi_dim);
            for i in 0..sample_n {
                counts[assign[i]] += 1;
                axpy_row(sums.row_mut(assign[i]), sample.row(i));
            }
            // Farthest-point reseed for empty clusters: deterministic
            // (max distance, ties to the lowest sample index).
            let mut reseed_from = farthest_order(&dist);
            for (c, &count) in counts.iter().enumerate() {
                if count == 0 {
                    if let Some(i) = reseed_from.next() {
                        centroids.row_mut(c).copy_from_slice(sample.row(i));
                    }
                    continue;
                }
                let inv = 1.0 / count as f64;
                let row = centroids.row_mut(c);
                for (slot, &s) in row.iter_mut().zip(sums.row(c)) {
                    *slot = s * inv;
                }
            }
        }

        // 3. Group the centroids (mini k-means over the K centroid
        //    vectors) so the full assignment pass is two-level:
        //    nearest-of-G groups, then nearest centroid within the best
        //    two groups — `O(√K)` per item instead of `O(K)`.
        let n_groups = ((n_clusters as f64).sqrt().ceil() as usize).clamp(1, n_clusters);
        let (group_centroids, groups) = group_centroids(&centroids, n_groups);

        // 4. Full assignment pass, fanned across the pool. Pure per
        //    item, so the result is identical at every thread count.
        let assignments: Vec<u32> = gmlfm_par::par_blocks(par, n, |range| {
            let mut psi = vec![0.0f64; psi_dim];
            range
                .map(|item| {
                    psi_into(model, &tables, items.features_of(item as u32), &mut psi);
                    two_level_nearest(&psi, &centroids, &group_centroids, &groups) as u32
                })
                .collect()
        });

        // 5. φ statistics: one pass for the per-cluster mean, one for
        //    the radius. Serial (cheap next to assignment) and in item
        //    order, so they are trivially deterministic.
        let mut counts = vec![0usize; n_clusters];
        let mut mean = Matrix::zeros(n_clusters, phi_dim);
        let mut phi = vec![0.0f64; phi_dim];
        for (item, &a) in assignments.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            phi_into(model, &tables, items.features_of(item as u32), &mut phi);
            axpy_row(mean.row_mut(c), &phi);
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f64;
                for slot in mean.row_mut(c) {
                    *slot *= inv;
                }
            }
        }
        let mut radius = vec![0.0f64; n_clusters];
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
        let mut member_norms: Vec<Vec<f64>> = vec![Vec::new(); n_clusters];
        for (item, &a) in assignments.iter().enumerate() {
            let c = a as usize;
            phi_into(model, &tables, items.features_of(item as u32), &mut phi);
            let r = sqdist(&phi, mean.row(c)).sqrt();
            if r > radius[c] {
                radius[c] = r;
            }
            members[c].push(item as u32);
            member_norms[c].push(r);
        }

        // 6. Drop empty clusters (their bounds would be meaningless and
        //    they would waste nprobe slots).
        let keep: Vec<usize> = (0..n_clusters).filter(|&c| counts[c] > 0).collect();
        let mut phi_mean = Matrix::zeros(keep.len(), phi_dim);
        let mut kept_radius = Vec::with_capacity(keep.len());
        let mut kept_members = Vec::with_capacity(keep.len());
        let mut kept_norms = Vec::with_capacity(keep.len());
        for (slot, &c) in keep.iter().enumerate() {
            phi_mean.row_mut(slot).copy_from_slice(mean.row(c));
            kept_radius.push(radius[c]);
            kept_members.push(std::mem::take(&mut members[c]));
            kept_norms.push(std::mem::take(&mut member_norms[c]));
        }

        Some(IvfIndex {
            kind,
            k,
            n_items: n,
            members: kept_members,
            member_norms: kept_norms,
            phi_mean,
            radius: kept_radius,
            default_nprobe: default_nprobe.min(keep.len().max(1)),
            min_candidates: opts.min_candidates,
        })
    }

    /// Reassembles an index from its serialised parts (artifact load).
    /// `assignments[item]` is the item's cluster and `item_norms[item]`
    /// its deviation norm `‖φ(item) − φ̄_c‖`; member lists are rebuilt
    /// in ascending item order and each cluster's radius is re-derived
    /// as its members' max norm (so the two bound tables cannot drift
    /// apart through serialisation).
    pub fn from_parts(
        kind: &str,
        k: usize,
        phi_mean: Matrix,
        item_norms: Vec<f64>,
        assignments: Vec<u32>,
        default_nprobe: usize,
        min_candidates: usize,
    ) -> Result<IvfIndex, String> {
        let kind = IndexKind::from_name(kind).ok_or_else(|| format!("unknown index kind '{kind}'"))?;
        let n_clusters = phi_mean.rows();
        if phi_mean.cols() != kind.phi_dim(k) {
            return Err(format!(
                "index mean width {} != {} for kind '{}' at k={k}",
                phi_mean.cols(),
                kind.phi_dim(k),
                kind.name()
            ));
        }
        if item_norms.len() != assignments.len() {
            return Err(format!("{} item norms for {} assignments", item_norms.len(), assignments.len()));
        }
        if item_norms.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err("index item norm is not a finite non-negative number".into());
        }
        if default_nprobe == 0 {
            return Err("index default_nprobe must be >= 1".into());
        }
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
        let mut member_norms: Vec<Vec<f64>> = vec![Vec::new(); n_clusters];
        let mut radius = vec![0.0f64; n_clusters];
        for (item, (&c, &norm)) in assignments.iter().zip(&item_norms).enumerate() {
            if c as usize >= n_clusters {
                return Err(format!("item {item} assigned to cluster {c} of {n_clusters}"));
            }
            members[c as usize].push(item as u32);
            member_norms[c as usize].push(norm);
            if norm > radius[c as usize] {
                radius[c as usize] = norm;
            }
        }
        Ok(IvfIndex {
            kind,
            k,
            n_items: assignments.len(),
            members,
            member_norms,
            phi_mean,
            radius,
            default_nprobe,
            min_candidates,
        })
    }

    /// The linearisation this index was built for.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Embedding size `k` of the model this index was built from.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of (non-empty) clusters.
    pub fn n_clusters(&self) -> usize {
        self.members.len()
    }

    /// Clusters visited by default when a request does not pin `nprobe`.
    pub fn default_nprobe(&self) -> usize {
        self.default_nprobe
    }

    /// Whole-catalogue requests over fewer surviving candidates than
    /// this fall back to the exact path.
    pub fn min_candidates(&self) -> usize {
        self.min_candidates
    }

    /// Per-cluster `φ` means (artifact serialisation).
    pub fn phi_mean(&self) -> &Matrix {
        &self.phi_mean
    }

    /// Per-cluster radii (artifact serialisation).
    pub fn radius(&self) -> &[f64] {
        &self.radius
    }

    /// `assignments[item] = cluster`, the serialisable inverse of the
    /// member lists.
    pub fn assignments(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.n_items];
        for (c, members) in self.members.iter().enumerate() {
            for &item in members {
                out[item as usize] = c as u32;
            }
        }
        out
    }

    /// `item_norms[item] = ‖φ(item) − φ̄_c‖`, the per-item deviation
    /// norms in item order (artifact serialisation, parallel to
    /// [`IvfIndex::assignments`]).
    pub fn item_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.n_items];
        for (members, norms) in self.members.iter().zip(&self.member_norms) {
            for (&item, &norm) in members.iter().zip(norms) {
                out[item as usize] = norm;
            }
        }
        out
    }

    /// Checks the index matches a serving model and catalogue size —
    /// what snapshot installation validates, so [`IvfIndex::search`]
    /// can assume compatibility.
    pub fn compatible_with(&self, model: &FrozenModel, n_items: usize) -> Result<(), String> {
        match IndexKind::of_model(model) {
            Some(kind) if kind == self.kind => {}
            Some(kind) => {
                return Err(format!("index kind '{}' vs model kind '{}'", self.kind.name(), kind.name()))
            }
            None => return Err("model has no metric linearisation for the index".into()),
        }
        if model.k() != self.k {
            return Err(format!("index k={} vs model k={}", self.k, model.k()));
        }
        if n_items != self.n_items {
            return Err(format!("index over {} items vs catalog of {n_items}", self.n_items));
        }
        Ok(())
    }

    /// Top-`n` retrieval through the index: rank clusters by their
    /// score upper bound, visit at most `nprobe` of them (best first),
    /// prune clusters whose slackened bound cannot strictly beat the
    /// current heap threshold, and re-rank every surviving member
    /// exactly through [`TopNRanker::score`] — skipping items for which
    /// `skip` returns `true` (exclusions, seen items).
    ///
    /// Results follow the retrieval total order ([`crate::rank_cmp`])
    /// and are identical at every thread count: the probe list is fixed
    /// before the scan fans out, per-shard pruning is sound (a pruned
    /// cluster cannot contribute to the final top `n`), and scores are
    /// bitwise the ranker's. With `nprobe >= n_clusters()` the result
    /// is item-for-item the exhaustive scan over the non-skipped items.
    #[allow(clippy::too_many_arguments)]
    pub fn search<S: ItemFeatureSource + ?Sized>(
        &self,
        model: &FrozenModel,
        items: &S,
        template: &[u32],
        item_slots: &[usize],
        n: usize,
        nprobe: usize,
        par: Parallelism,
        skip: &(impl Fn(u32) -> bool + Sync),
    ) -> Vec<(u32, f64)> {
        self.search_prec(model, items, template, item_slots, n, nprobe, par, skip, Precision::F64)
    }

    /// [`IvfIndex::search`] with an explicit probe-scan [`Precision`].
    ///
    /// With `Precision::F32`/`Precision::I8` (and a model carrying the
    /// low-precision tables), the member delta scan runs over the
    /// narrowed tables into a [`rerank_pool`]-sized pool per shard, and
    /// the pooled survivors are re-scored by the exact f64 ranker — so
    /// returned scores are *always* bitwise the model's, whatever the
    /// probe precision; only which items survive the probe is
    /// approximate (measured as recall in `BENCH_kernel.json`). The
    /// Cauchy–Schwarz bounds stay exact f64; they are compared against
    /// the approximate pool threshold, which the [`rerank_pool`] margin
    /// cushions (quantization bias in the threshold can still prune a
    /// borderline true member — the residual recall gap vs the f64
    /// probe). When the model has no tables for the requested
    /// precision the scan silently runs exact.
    #[allow(clippy::too_many_arguments)]
    pub fn search_prec<S: ItemFeatureSource + ?Sized>(
        &self,
        model: &FrozenModel,
        items: &S,
        template: &[u32],
        item_slots: &[usize],
        n: usize,
        nprobe: usize,
        par: Parallelism,
        skip: &(impl Fn(u32) -> bool + Sync),
        precision: Precision,
    ) -> Vec<(u32, f64)> {
        debug_assert!(self.compatible_with(model, items.item_count()).is_ok());
        if n == 0 || self.members.is_empty() {
            return Vec::new();
        }
        // Unreachable through `ModelServer` (snapshot installation
        // checks `compatible_with`, covered by the debug assertion
        // above); a direct caller pairing the index with a non-metric
        // model gets the empty ranking, not a panic.
        let Some(tables) = MetricTables::of(model) else {
            return Vec::new();
        };
        let probe = self.probe_order(model, &tables, template, item_slots, nprobe);
        let ctx_score = probe.ctx_score;

        let shards = par.get().clamp(1, probe.clusters.len().max(1));
        let ranges = gmlfm_par::block_ranges(probe.clusters.len(), shards);

        let low_probe =
            precision != Precision::F64 && model.low_ranker(template, item_slots, precision).is_some();
        if low_probe {
            let pool_n = rerank_pool(n);
            let shard_tops = gmlfm_par::par_map(par, &ranges, |range| {
                // Constructible by the `low_probe` check above.
                let Some(mut low) = model.low_ranker(template, item_slots, precision) else {
                    return Vec::new();
                };
                let mut heap = TopNHeap::new(pool_n);
                for &(c, mean_score, ub) in &probe.clusters[range.clone()] {
                    if let Some((_, threshold)) = heap.threshold() {
                        if ctx_score + ub + bound_slack(ctx_score, ub) < threshold {
                            continue;
                        }
                    }
                    for (&item, &norm) in self.members[c].iter().zip(&self.member_norms[c]) {
                        if skip(item) {
                            continue;
                        }
                        if let Some((_, threshold)) = heap.threshold() {
                            let item_ub = mean_score + probe.norm_g * norm;
                            if ctx_score + item_ub + bound_slack(ctx_score, item_ub) < threshold {
                                continue;
                            }
                        }
                        heap.push(item, low.approx_score(items.features_of(item)));
                    }
                }
                heap.into_sorted()
            });
            let pool = merge_sharded(pool_n, shard_tops);
            return crate::topn::exact_rerank(model, items, pool, template, item_slots, n);
        }

        let shard_tops = gmlfm_par::par_map(par, &ranges, |range| {
            let mut ranker = model.ranker(template, item_slots);
            let mut heap = TopNHeap::new(n);
            for &(c, mean_score, ub) in &probe.clusters[range.clone()] {
                if let Some((_, threshold)) = heap.threshold() {
                    // Slackened Cauchy–Schwarz prune: only a *strict*
                    // miss is safe — at equality a member tying the
                    // threshold score could still win on item id.
                    if ctx_score + ub + bound_slack(ctx_score, ub) < threshold {
                        continue;
                    }
                }
                for (&item, &norm) in self.members[c].iter().zip(&self.member_norms[c]) {
                    if skip(item) {
                        continue;
                    }
                    if let Some((_, threshold)) = heap.threshold() {
                        // The member's own norm bound — one multiply
                        // against the stored deviation norm, far
                        // cheaper than the delta-scan score it saves.
                        let item_ub = mean_score + probe.norm_g * norm;
                        if ctx_score + item_ub + bound_slack(ctx_score, item_ub) < threshold {
                            continue;
                        }
                    }
                    heap.push(item, ranker.score(items.features_of(item)));
                }
            }
            heap.into_sorted()
        });
        merge_sharded(n, shard_tops)
    }

    /// The probe list for a query context: clusters ranked by their
    /// **centroid score** `⟨g, φ̄_c⟩` descending (ties by cluster
    /// index) and capped at `nprobe` — the classic IVF visiting order.
    /// Each entry also carries the Cauchy–Schwarz upper bound
    /// `⟨g, φ̄_c⟩ + ‖g‖·r_c` for threshold pruning during the scan (the
    /// bound is too radius-dominated to *rank* by, but sound to *prune*
    /// by).
    fn probe_order(
        &self,
        model: &FrozenModel,
        tables: &MetricTables<'_>,
        template: &[u32],
        item_slots: &[usize],
        nprobe: usize,
    ) -> ProbeList {
        let ranker = model.ranker(template, item_slots);
        let ctx_score = ranker.context_score();
        let g = query_vector(model, tables, ranker.context_features());
        let norm_g = dot(&g, &g).sqrt();
        let mut clusters: Vec<(usize, f64, f64)> = (0..self.members.len())
            .map(|c| {
                let mean_score = dot(&g, self.phi_mean.row(c));
                (c, mean_score, mean_score + norm_g * self.radius[c])
            })
            .collect();
        clusters.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        clusters.truncate(nprobe.max(1));
        ProbeList { ctx_score, norm_g, clusters }
    }
}

/// A query's cluster visiting plan.
struct ProbeList {
    ctx_score: f64,
    /// `‖g‖`, scaling the stored deviation norms into score bounds.
    norm_g: f64,
    /// `(cluster, centroid score ⟨g, φ̄_c⟩, upper bound on ⟨g, φ⟩)`,
    /// best centroid score first.
    clusters: Vec<(usize, f64, f64)>,
}

/// Numerical slack added to a cluster's score bound before the
/// threshold comparison: the bound is computed through a different
/// float expression than the ranker's exact scores, so a razor-thin
/// margin must not prune. `1e-9` relative is orders of magnitude above
/// the re-association error of these sums and orders of magnitude below
/// any score gap that matters.
///
/// Sign-soundness: the slack is built from *absolute values*, so it is
/// strictly positive whatever the signs of `ctx_score` and `ub` — and
/// it is always *added to the prune side* of the strict `<` test
/// (`bound + slack < threshold` prunes). Adding a positive quantity to
/// the candidate's upper bound can only make pruning rarer, never
/// admit a wrong prune; in particular an all-negative score landscape
/// (`ctx_score`, `ub`, and `threshold` all `< 0`) widens the bound
/// toward zero exactly as the all-positive case widens it away from
/// it. Pinned by `all_negative_scores_probe_matches_exhaustive_scan`.
fn bound_slack(ctx_score: f64, ub: f64) -> f64 {
    1e-9 * (1.0 + ctx_score.abs() + ub.abs())
}

/// The item-side linearisation `φ(item)` (see the [module docs](self)),
/// written into `out` (length `tables.kind().phi_dim(k)`).
fn phi_into(model: &FrozenModel, tables: &MetricTables<'_>, item_feats: &[u32], out: &mut [f64]) {
    out.fill(0.0);
    let mut t0 = model.second_order(item_feats);
    for &f in item_feats {
        t0 += model.w[f as usize];
    }
    out[0] = t0;
    let k = model.k();
    match tables {
        MetricTables::Unweighted { hat } => {
            out[1] = item_feats.len() as f64;
            for &f in item_feats {
                let (vhf, qf) = hat.row(f as usize);
                out[2] += qf;
                for (slot, &vh) in out[3..].iter_mut().zip(vhf) {
                    *slot += vh;
                }
            }
        }
        MetricTables::Weighted { hat, h } => {
            let (t1, rest) = out[1..].split_at_mut(k);
            let (t2, t3) = rest.split_at_mut(k);
            for &f in item_feats {
                let vf = model.v.row(f as usize);
                let (vhf, qf) = hat.row(f as usize);
                for r in 0..k {
                    let hv = h[r] * vf[r];
                    t1[r] += hv;
                    t2[r] += qf * hv;
                    for (slot, &vh) in t3[r * k..(r + 1) * k].iter_mut().zip(vhf) {
                        *slot += hv * vh;
                    }
                }
            }
        }
    }
}

/// The compact clustering embedding `ψ(item)`: the weighted kind keeps
/// the `k²` outer-product block only through its marginals
/// (`Σ h⊙v_f`, `Σ v̂_f`), which preserves the shared-attribute
/// structure clustering feeds on at a fraction of the k-means cost.
fn psi_into(model: &FrozenModel, tables: &MetricTables<'_>, item_feats: &[u32], out: &mut [f64]) {
    match tables {
        MetricTables::Unweighted { .. } => phi_into(model, tables, item_feats, out),
        MetricTables::Weighted { hat, h } => {
            out.fill(0.0);
            let k = model.k();
            let mut t0 = model.second_order(item_feats);
            for &f in item_feats {
                t0 += model.w[f as usize];
                let vf = model.v.row(f as usize);
                let (vhf, qf) = hat.row(f as usize);
                for r in 0..k {
                    out[r] += h[r] * vf[r];
                    out[k + r] += vhf[r];
                }
                out[2 * k] += qf;
            }
            out[2 * k + 1] = t0;
        }
    }
}

/// The context-side query vector `g(ctx)` pairing with `φ` (see the
/// [module docs](self)).
fn query_vector(model: &FrozenModel, tables: &MetricTables<'_>, ctx: &[u32]) -> Vec<f64> {
    let k = model.k();
    let mut g = vec![0.0f64; tables.kind().phi_dim(k)];
    g[0] = 1.0;
    match tables {
        MetricTables::Unweighted { hat } => {
            let mut u = 0.0;
            for &f in ctx {
                let (vhf, qf) = hat.row(f as usize);
                u += qf;
                for (slot, &vh) in g[3..].iter_mut().zip(vhf) {
                    *slot += -2.0 * vh;
                }
            }
            g[1] = u;
            g[2] = ctx.len() as f64;
        }
        MetricTables::Weighted { hat, .. } => {
            let (a, b, c) = model.metric_partials(ctx, hat);
            g[1..1 + k].copy_from_slice(&b);
            g[1 + k..1 + 2 * k].copy_from_slice(&a);
            for r in 0..k {
                for (slot, &cv) in g[1 + 2 * k + r * k..1 + 2 * k + (r + 1) * k].iter_mut().zip(c.row(r)) {
                    *slot = -2.0 * cv;
                }
            }
        }
    }
    g
}

fn sqdist(a: &[f64], b: &[f64]) -> f64 {
    crate::kernel::sq_dist(a, b)
}

fn axpy_row(acc: &mut [f64], row: &[f64]) {
    crate::kernel::axpy(1.0, row, acc);
}

/// Nearest centroid among `candidates` by squared distance; ties keep
/// the first (lowest) candidate in iteration order.
fn nearest(point: &[f64], centroids: &Matrix, candidates: impl IntoIterator<Item = usize>) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for c in candidates {
        let d = sqdist(point, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Sample indices ordered farthest-from-their-centroid first (reseed
/// order for empty clusters); ties by ascending index.
fn farthest_order(dist: &[f64]) -> impl Iterator<Item = usize> {
    let mut order: Vec<usize> = (0..dist.len()).collect();
    let dist = dist.to_vec();
    order.sort_by(|&a, &b| dist[b].total_cmp(&dist[a]).then(a.cmp(&b)));
    order.into_iter()
}

/// Mini k-means over the centroid vectors themselves: `n_groups` group
/// centroids plus each group's member-centroid list (used by the
/// two-level assignment pass).
fn group_centroids(centroids: &Matrix, n_groups: usize) -> (Matrix, Vec<Vec<usize>>) {
    let (n, dim) = centroids.shape();
    let mut group_c = Matrix::zeros(n_groups, dim);
    for gx in 0..n_groups {
        group_c.row_mut(gx).copy_from_slice(centroids.row(gx * n / n_groups));
    }
    let mut assign = vec![0usize; n];
    for _ in 0..4 {
        for (i, slot) in assign.iter_mut().enumerate() {
            *slot = nearest(centroids.row(i), &group_c, 0..n_groups).0;
        }
        let mut counts = vec![0usize; n_groups];
        let mut sums = Matrix::zeros(n_groups, dim);
        for i in 0..n {
            counts[assign[i]] += 1;
            axpy_row(sums.row_mut(assign[i]), centroids.row(i));
        }
        for (gx, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f64;
                let row = group_c.row_mut(gx);
                for (slot, &s) in row.iter_mut().zip(sums.row(gx)) {
                    *slot = s * inv;
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (i, &gx) in assign.iter().enumerate() {
        groups[gx].push(i);
    }
    (group_c, groups)
}

/// Two-level nearest-centroid lookup: nearest of the group centroids
/// first, then an exact search within the two best groups' members.
/// Approximate at group boundaries — harmless here, because the
/// cluster bounds are computed from the *actual* assignment.
fn two_level_nearest(point: &[f64], centroids: &Matrix, group_c: &Matrix, groups: &[Vec<usize>]) -> usize {
    let n_groups = group_c.rows();
    if n_groups <= 2 {
        return nearest(point, centroids, 0..centroids.rows()).0;
    }
    let (mut g1, mut d1) = (0usize, f64::INFINITY);
    let (mut g2, mut d2) = (0usize, f64::INFINITY);
    for gx in 0..n_groups {
        let d = sqdist(point, group_c.row(gx));
        if d < d1 {
            (g2, d2) = (g1, d1);
            (g1, d1) = (gx, d);
        } else if d < d2 {
            (g2, d2) = (gx, d);
        }
    }
    let (best1, d_best1) = nearest(point, centroids, groups[g1].iter().copied());
    let (best2, d_best2) = nearest(point, centroids, groups[g2].iter().copied());
    // Strict <: ties resolve to the first group's winner, and when a
    // group is empty its INFINITY distance loses automatically.
    if d_best2 < d_best1 {
        best2
    } else {
        best1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topn::rank_cmp;

    /// Items `[item-id feature, attribute feature]` over a feature
    /// space shared with a small context: the shape every catalogue
    /// request has.
    struct Fixture {
        model: FrozenModel,
        items: Vec<Vec<u32>>,
        template: Vec<u32>,
        item_slots: Vec<usize>,
    }

    fn fixture(n_items: usize, n_attrs: usize, weighted: bool, seed: u64) -> Fixture {
        let n_users = 4;
        let dim = n_users + n_items + n_attrs;
        let model = if weighted {
            FrozenModel::synthetic_metric(dim, 6, seed)
        } else {
            // Rebuild the synthetic model without `h` for the
            // unweighted linearisation.
            let m = FrozenModel::synthetic_metric(dim, 6, seed);
            let SecondOrder::Metric { hat, .. } = m.second_order_kind().clone() else { unreachable!() };
            FrozenModel::from_parts(
                m.bias(),
                m.linear_weights().to_vec(),
                m.factors().clone(),
                SecondOrder::metric(hat.v_hat_matrix(), hat.q_vec(), None, Distance::SquaredEuclidean),
            )
        };
        let items: Vec<Vec<u32>> = (0..n_items)
            .map(|i| vec![(n_users + i) as u32, (n_users + n_items + (i * 7 + 3) % n_attrs) as u32])
            .collect();
        Fixture { model, items, template: vec![1, 4, (n_users + n_items) as u32], item_slots: vec![1, 2] }
    }

    /// Exhaustive reference over the same ranker.
    fn reference_top_n(fx: &Fixture, n: usize, skip: impl Fn(u32) -> bool) -> Vec<(u32, f64)> {
        let mut ranker = fx.model.ranker(&fx.template, &fx.item_slots);
        let mut scored: Vec<(u32, f64)> = (0..fx.items.len() as u32)
            .filter(|&i| !skip(i))
            .map(|i| (i, ranker.score(&fx.items[i as usize])))
            .collect();
        scored.sort_by(rank_cmp);
        scored.truncate(n);
        scored
    }

    #[test]
    fn linearisation_matches_ranker_scores() {
        for weighted in [true, false] {
            let fx = fixture(60, 7, weighted, 11);
            let tables = MetricTables::of(&fx.model).expect("metric model");
            let mut ranker = fx.model.ranker(&fx.template, &fx.item_slots);
            let g = query_vector(&fx.model, &tables, ranker.context_features());
            let ctx_score = ranker.context_score();
            let mut phi = vec![0.0; tables.kind().phi_dim(fx.model.k())];
            for (i, feats) in fx.items.iter().enumerate() {
                let exact = ranker.score(feats);
                phi_into(&fx.model, &tables, feats, &mut phi);
                let linear = ctx_score + dot(&g, &phi);
                assert!(
                    (exact - linear).abs() <= 1e-9 * exact.abs().max(1.0),
                    "weighted={weighted} item {i}: ranker {exact} vs affine {linear}"
                );
            }
        }
    }

    #[test]
    fn full_probe_matches_exhaustive_scan_bitwise() {
        for weighted in [true, false] {
            let fx = fixture(300, 11, weighted, 5);
            let opts = IvfBuildOptions { clusters: Some(12), ..IvfBuildOptions::default() };
            let index =
                IvfIndex::build(&fx.model, &fx.items, &opts, Parallelism::serial()).expect("metric model");
            assert_eq!(index.n_items(), 300);
            for n in [1usize, 10, 300] {
                for threads in [1usize, 3] {
                    let got = index.search(
                        &fx.model,
                        &fx.items,
                        &fx.template,
                        &fx.item_slots,
                        n,
                        index.n_clusters(),
                        Parallelism::threads(threads),
                        &|_| false,
                    );
                    let want = reference_top_n(&fx, n, |_| false);
                    assert_eq!(got.len(), want.len(), "weighted={weighted} n={n}");
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.0, w.0, "weighted={weighted} n={n}");
                        assert_eq!(g.1.to_bits(), w.1.to_bits(), "weighted={weighted} n={n}");
                    }
                }
            }
        }
    }

    /// The [`bound_slack`] soundness fixture its doc comment names:
    /// with a large negative bias every context score, member upper
    /// bound and heap threshold is `< 0`, so a slack built from (or
    /// scaled by) *signed* values would shrink instead of widen and
    /// silently prune true members. The slack is built from absolute
    /// values and always **added** to the prune side of a strict `<`,
    /// so a full probe must still reproduce the exhaustive scan
    /// bitwise.
    #[test]
    fn all_negative_scores_probe_matches_exhaustive_scan() {
        for weighted in [true, false] {
            let base = fixture(300, 11, weighted, 21);
            let model = FrozenModel::from_parts(
                base.model.bias() - 1000.0,
                base.model.linear_weights().to_vec(),
                base.model.factors().clone(),
                base.model.second_order_kind().clone(),
            );
            let fx = Fixture { model, ..base };
            let mut ranker = fx.model.ranker(&fx.template, &fx.item_slots);
            assert!(
                (0..fx.items.len()).all(|i| ranker.score(&fx.items[i]) < 0.0),
                "fixture must put every candidate score below zero"
            );
            let opts = IvfBuildOptions { clusters: Some(12), ..IvfBuildOptions::default() };
            let index =
                IvfIndex::build(&fx.model, &fx.items, &opts, Parallelism::serial()).expect("metric model");
            for n in [1usize, 10, 50] {
                let got = index.search(
                    &fx.model,
                    &fx.items,
                    &fx.template,
                    &fx.item_slots,
                    n,
                    index.n_clusters(),
                    Parallelism::serial(),
                    &|_| false,
                );
                let want = reference_top_n(&fx, n, |_| false);
                assert_eq!(got.len(), want.len(), "weighted={weighted} n={n}");
                for (g, w) in got.iter().zip(&want) {
                    assert!(g.1 < 0.0, "weighted={weighted} n={n}: fixture scores stay negative");
                    assert_eq!(g.0, w.0, "weighted={weighted} n={n}");
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "weighted={weighted} n={n}");
                }
            }
        }
    }

    #[test]
    fn skip_predicate_excludes_items() {
        let fx = fixture(200, 5, true, 9);
        let index = IvfIndex::build(
            &fx.model,
            &fx.items,
            &IvfBuildOptions { clusters: Some(8), ..IvfBuildOptions::default() },
            Parallelism::serial(),
        )
        .expect("metric model");
        let skip = |item: u32| item.is_multiple_of(3);
        let got = index.search(
            &fx.model,
            &fx.items,
            &fx.template,
            &fx.item_slots,
            15,
            index.n_clusters(),
            Parallelism::serial(),
            &skip,
        );
        assert!(got.iter().all(|(i, _)| i % 3 != 0));
        assert_eq!(got, reference_top_n(&fx, 15, skip));
    }

    #[test]
    fn default_probe_hits_high_recall_on_clustered_items() {
        // Items share attribute features (2 of 3 features are
        // attribute-side), so the φ space has genuine cluster
        // structure; the default nprobe must find nearly all of the
        // true top-10.
        let n_items = 4000;
        let n_attr_a = 32;
        let n_attr_b = 6;
        let n_users = 4;
        let dim = n_users + n_items + n_attr_a + n_attr_b;
        let model = FrozenModel::synthetic_metric(dim, 6, 31);
        let items: Vec<Vec<u32>> = (0..n_items)
            .map(|i| {
                vec![
                    (n_users + i) as u32,
                    (n_users + n_items + (i * 13 + 1) % n_attr_a) as u32,
                    (n_users + n_items + n_attr_a + (i * 5) % n_attr_b) as u32,
                ]
            })
            .collect();
        let template = vec![2, 4, (n_users + n_items) as u32, (n_users + n_items + n_attr_a) as u32];
        let item_slots = vec![1, 2, 3];
        let index = IvfIndex::build(&model, &items, &IvfBuildOptions::default(), Parallelism::serial())
            .expect("metric model");
        let mut ranker = model.ranker(&template, &item_slots);
        let mut scored: Vec<(u32, f64)> =
            (0..n_items as u32).map(|i| (i, ranker.score(&items[i as usize]))).collect();
        scored.sort_by(rank_cmp);
        let truth: Vec<u32> = scored[..10].iter().map(|p| p.0).collect();
        let got = index.search(
            &model,
            &items,
            &template,
            &item_slots,
            10,
            index.default_nprobe(),
            Parallelism::serial(),
            &|_| false,
        );
        let hits = got.iter().filter(|(i, _)| truth.contains(i)).count();
        assert!(hits >= 9, "recall@10 {}/10 at default nprobe {}", hits, index.default_nprobe());
    }

    #[test]
    fn parts_round_trip_preserves_search_results() {
        let fx = fixture(250, 9, true, 21);
        let index = IvfIndex::build(
            &fx.model,
            &fx.items,
            &IvfBuildOptions { clusters: Some(10), ..IvfBuildOptions::default() },
            Parallelism::serial(),
        )
        .expect("metric model");
        let rebuilt = IvfIndex::from_parts(
            index.kind().name(),
            index.k(),
            index.phi_mean().clone(),
            index.item_norms(),
            index.assignments(),
            index.default_nprobe(),
            index.min_candidates(),
        )
        .expect("valid parts");
        assert_eq!(rebuilt.n_clusters(), index.n_clusters());
        assert_eq!(rebuilt.members, index.members);
        assert_eq!(rebuilt.member_norms, index.member_norms);
        assert_eq!(rebuilt.radius, index.radius, "radius re-derives from the member norms");
        let a = index.search(
            &fx.model,
            &fx.items,
            &fx.template,
            &fx.item_slots,
            7,
            3,
            Parallelism::serial(),
            &|_| false,
        );
        let b = rebuilt.search(
            &fx.model,
            &fx.items,
            &fx.template,
            &fx.item_slots,
            7,
            3,
            Parallelism::serial(),
            &|_| false,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_inconsistent_tables() {
        let fx = fixture(50, 5, true, 2);
        let index = IvfIndex::build(
            &fx.model,
            &fx.items,
            &IvfBuildOptions { clusters: Some(4), ..IvfBuildOptions::default() },
            Parallelism::serial(),
        )
        .expect("metric model");
        let err = IvfIndex::from_parts(
            "no-such-kind",
            index.k(),
            index.phi_mean().clone(),
            index.item_norms(),
            index.assignments(),
            1,
            0,
        );
        assert!(err.is_err());
        let err = IvfIndex::from_parts(
            index.kind().name(),
            index.k() + 1,
            index.phi_mean().clone(),
            index.item_norms(),
            index.assignments(),
            1,
            0,
        );
        assert!(err.is_err(), "phi width must match kind/k");
        let mut bad = index.assignments();
        bad[0] = index.n_clusters() as u32;
        let err = IvfIndex::from_parts(
            index.kind().name(),
            index.k(),
            index.phi_mean().clone(),
            index.item_norms(),
            bad,
            1,
            0,
        );
        assert!(err.is_err(), "out-of-range assignment must be rejected");
    }

    #[test]
    fn unsupported_models_build_nothing() {
        let mut rng = gmlfm_tensor::seeded_rng(3);
        let v = gmlfm_tensor::init::normal(&mut rng, 20, 4, 0.0, 0.4);
        let dot_model = FrozenModel::from_parts(0.0, vec![0.0; 20], v.clone(), SecondOrder::Dot);
        let items: Vec<Vec<u32>> = (0..10).map(|i| vec![i as u32]).collect();
        assert!(
            IvfIndex::build(&dot_model, &items, &IvfBuildOptions::default(), Parallelism::serial()).is_none()
        );
        assert!(!IvfIndex::supports(&dot_model));
        let manhattan = {
            let v_hat = gmlfm_tensor::init::normal(&mut rng, 20, 4, 0.0, 0.4);
            let q: Vec<f64> = (0..20).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
            FrozenModel::from_parts(
                0.0,
                vec![0.0; 20],
                v,
                SecondOrder::metric(v_hat, q, None, Distance::Manhattan),
            )
        };
        assert!(
            IvfIndex::build(&manhattan, &items, &IvfBuildOptions::default(), Parallelism::serial()).is_none()
        );
    }

    #[test]
    fn build_is_thread_count_independent() {
        let fx = fixture(500, 8, true, 13);
        let opts = IvfBuildOptions { clusters: Some(16), ..IvfBuildOptions::default() };
        let serial = IvfIndex::build(&fx.model, &fx.items, &opts, Parallelism::serial()).expect("build");
        let par = IvfIndex::build(&fx.model, &fx.items, &opts, Parallelism::threads(5)).expect("build");
        assert_eq!(serial.members, par.members);
        assert_eq!(serial.member_norms, par.member_norms);
        assert_eq!(serial.radius, par.radius);
        assert_eq!(serial.phi_mean().as_slice(), par.phi_mean().as_slice());
    }
}
