//! Top-N ranking over a frozen model.
//!
//! Leave-one-out ranking scores one context (user + side attributes)
//! against hundreds of candidate items. The autograd path rebuilds the
//! full forward for every candidate — `O(items × full-forward)`. The
//! ranker here computes the context-side partial sums of Eq. 10/11
//! (`a`, `b`, `C` — or `s`, `u` without the transformation weight) once,
//! then scores each candidate with only the item-side delta:
//! `O(full-forward + items × item-delta)`, the delta being `O(k²)` per
//! candidate item feature (and `O(k)` in the unweighted and vanilla-FM
//! cases).
//!
//! Modes without a decoupled form — the non-Euclidean metric distances
//! and TransFM's order-dependent translated distance — still score by
//! item delta: the context-side pairs are folded into the cached context
//! score once, and each candidate pays only its `O(|ctx|·k)` cross pairs
//! against the fixed context plus its within-group pairs. No mode
//! re-evaluates the full spliced template, and no mode allocates per
//! score.
//!
//! A candidate is a *group* of features (the item id plus its attribute
//! values), declared as slot positions in a template instance, so
//! datasets with item-side attributes rank exactly like plain
//! user × item ones.

use crate::frozen::{dot, FrozenModel, HatQ, SecondOrder};
use crate::index::ItemFeatureSource;
use crate::kernel;
use crate::lowp::{LowPrec, Precision};
use gmlfm_core::Distance;
use gmlfm_tensor::Matrix;

/// Context-side scoring state, by second-order mode. Each variant
/// carries the model tables its delta formula reads, attached when the
/// state is built — so the per-candidate dispatch is a single exhaustive
/// match with no "mode disagrees with state" arm to fall into.
enum State<'m> {
    /// Modes whose cross pairs decouple per candidate feature; scored
    /// through [`Cross`].
    Decoupled(Cross<'m>),
    /// TransFM: cross pairs against the fixed context, oriented by
    /// template position (the translated distance is order-dependent) —
    /// `O(|ctx|·k)` per candidate feature, allocation-free.
    Translated { v_trans: &'m Matrix },
}

/// Context-side partial sums for the decoupled modes.
enum Cross<'m> {
    /// Vanilla FM: `a = Σ_ctx v_f` — `O(k)` per candidate feature.
    Dot { a: Vec<f64> },
    /// Weighted metric (Eq. 10/11) partial sums: `a = Σ v_f`,
    /// `b = Σ q_f v_f`, `C = Σ v_f v̂_fᵀ` — `O(k²)` per candidate
    /// feature, independent of the context size. Built when the context
    /// is wide (`|ctx| > k`).
    MetricWeighted { a: Vec<f64>, b: Vec<f64>, c: Matrix, hat: &'m HatQ, h: &'m [f64] },
    /// Weighted metric with a narrow context: cross pairs iterated
    /// directly over the context features — `O(|ctx|·k)` per candidate
    /// feature, allocation-free, cheaper than the `O(k²)` partials when
    /// `|ctx| < k`. The context side is staged once as flat SoA rows —
    /// `hw` holds `h ⊙ vᵢ`, `vh` the `v̂ᵢ` rows, `q` the norms — so the
    /// per-candidate loop is contiguous kernel dots with no per-pair
    /// `h` re-multiplication or row gather.
    MetricWeightedDirect { hat: &'m HatQ, h: &'m [f64], hw: Vec<f64>, vh: Vec<f64>, q: Vec<f64> },
    /// Unweighted metric: `s = Σ v̂_f`, `u = Σ q_f` — `O(k)` per
    /// candidate feature. Built only for wide contexts (`|ctx| > k`),
    /// where the decoupled form's speedup outweighs its cancellation
    /// (see [`Cross::MetricUnweightedDirect`]).
    MetricUnweighted { s: Vec<f64>, u: f64, hat: &'m HatQ },
    /// Unweighted metric with a narrow context (`|ctx| <= k`): each
    /// cross pair evaluated as a direct difference-form squared
    /// distance — `O(|ctx|·k)` per candidate feature. The expanded
    /// `u + m·qⱼ − 2⟨s, v̂ⱼ⟩` form suffers catastrophic cancellation on
    /// near-duplicate embeddings (the true distance is `O(δ²)` but the
    /// expansion rounds at `O(ε·‖v̂‖²)`, wiping out the ranking between
    /// near-identical items); [`kernel::sq_dist`] subtracts before
    /// squaring, so those items keep their true order. Mirrors the
    /// weighted `|ctx| <= k` crossover. The context `v̂ᵢ` rows are
    /// staged once as flat SoA rows in `vh`, so the per-candidate loop
    /// runs [`kernel::sq_dist`] over contiguous memory.
    MetricUnweightedDirect { hat: &'m HatQ, vh: Vec<f64> },
    /// Metric distances without a decoupled form (Manhattan, Chebyshev,
    /// cosine): cross pairs evaluated directly against the fixed context
    /// — `O(|ctx|·k)` per candidate feature, allocation-free.
    MetricPairwise { hat: &'m HatQ, h: Option<&'m [f64]>, distance: Distance },
}

/// Scores candidate items against a fixed context in `O(item-delta)` per
/// candidate. Build one with [`FrozenModel::ranker`].
pub struct TopNRanker<'m> {
    model: &'m FrozenModel,
    item_slots: Vec<usize>,
    /// Fixed context features (template minus item slots), in template
    /// order.
    ctx: Vec<u32>,
    /// Template positions of the context features (drives the pair
    /// orientation in the order-dependent TransFM mode).
    ctx_pos: Vec<usize>,
    /// `w₀ + Σ_ctx w[f] + second-order(ctx)`.
    ctx_score: f64,
    state: State<'m>,
    /// `item_slots.len() × k` staging rows for the candidate group's
    /// `h ⊙ v_a` vectors (see [`group_pairs`]).
    scratch: Vec<f64>,
    /// Dense per-request delta tables for the block scan, built on its
    /// first [`TopNRanker::score_block`] call (`None` until then and
    /// for non-decoupled modes).
    tables: Option<ScanTables>,
}

/// Widest slot range materialised as a dense cross-delta table.
const DENSE_SLOT_CAP: u32 = 512;

/// Largest `width_a × width_b` product materialised as a dense
/// within-group pair table.
const DENSE_PAIR_CAP: u64 = 4096;

/// A slot (or slot pair) must repeat at least this many times on
/// average across the catalogue before its table pays for itself —
/// below that, eager materialisation does more delta evaluations than
/// the scan it serves.
const DENSE_MIN_REPEAT: u64 = 4;

/// Dense per-request scoring tables for the block scan, materialised
/// from the item source's [`ItemFeatureSource::slot_ranges`].
///
/// Candidate *attribute* features (category, condition, …) draw from a
/// few dozen ids repeated across the whole catalogue, so their
/// context × candidate cross deltas — and the attribute × attribute
/// within-group pair terms — are request constants. Materialising them
/// once turns the per-candidate cost into one array read per attribute
/// slot plus the item-id work that is genuinely unique per candidate.
/// High-cardinality slots (the item id) and out-of-range lookups fall
/// back to direct evaluation, so a table is never required for
/// correctness. Every table entry holds the exact bits the direct
/// evaluation produces, so the block scan stays bitwise identical to
/// [`TopNRanker::score`].
struct ScanTables {
    /// One [`SlotTable`] per item slot, in slot order.
    slots: Vec<SlotTable>,
    /// One [`PairTable`] per slot pair, in the `(0,1), (0,2), …, (1,2),
    /// …` pair-loop order of [`group_pairs`].
    pairs: Vec<PairTable>,
}

/// Cross deltas for one item slot.
enum SlotTable {
    /// `vals[f - lo] = cross_delta(f)` for the slot's whole id range.
    Dense { lo: u32, vals: Vec<f64> },
    /// Slot too wide (or ranges unknown): evaluate per candidate.
    Direct,
}

/// Within-group pair terms `w_ab · D(v̂_a, v̂_b)` for one slot pair.
enum PairTable {
    /// `vals[(fa - lo_a) · wb + (fb - lo_b)]` over both id ranges.
    Dense { lo_a: u32, lo_b: u32, wb: u32, vals: Vec<f64> },
    /// Pair product too wide (or no decoupled pair form): evaluate per
    /// candidate.
    Direct,
}

impl ScanTables {
    /// Materialises the tables for one ranking request. `scratch` is
    /// the ranker's `h ⊙ v` staging row (clobbered).
    fn build<S: ItemFeatureSource + ?Sized>(
        model: &FrozenModel,
        ctx: &[u32],
        cross: &Cross<'_>,
        scratch: &mut [f64],
        n_slots: usize,
        items: &S,
    ) -> ScanTables {
        let n_pairs = n_slots * n_slots.saturating_sub(1) / 2;
        let direct = || ScanTables {
            slots: (0..n_slots).map(|_| SlotTable::Direct).collect(),
            pairs: (0..n_pairs).map(|_| PairTable::Direct).collect(),
        };
        let Some(ranges) = items.slot_ranges() else { return direct() };
        if ranges.len() != n_slots {
            return direct();
        }
        let n_items = items.item_count() as u64;
        let dim = model.w.len() as u32;
        let width =
            |&(lo, hi): &(u32, u32)| -> Option<u64> { (lo <= hi && hi < dim).then(|| (hi - lo) as u64 + 1) };
        let slots = ranges
            .iter()
            .map(|r| match width(r) {
                Some(w) if w <= DENSE_SLOT_CAP as u64 && w * DENSE_MIN_REPEAT <= n_items => {
                    let vals = (r.0..=r.1).map(|f| cross_delta(model, ctx, cross, f)).collect();
                    SlotTable::Dense { lo: r.0, vals }
                }
                _ => SlotTable::Direct,
            })
            .collect();
        // Pair tables exist only for the decoupled squared-Euclidean
        // group form the kernel path evaluates; everything else scores
        // pairs per candidate.
        let pair_form = match model.second_order_kind() {
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } if n_slots <= model.k() => {
                Some((hat, h))
            }
            _ => None,
        };
        let k = model.k();
        let mut pairs = Vec::with_capacity(n_pairs);
        for a in 0..n_slots {
            for b in a + 1..n_slots {
                let table = match (pair_form, width(&ranges[a]), width(&ranges[b])) {
                    (Some((hat, h)), Some(wa), Some(wb))
                        if wa * wb <= DENSE_PAIR_CAP && wa * wb * DENSE_MIN_REPEAT <= n_items =>
                    {
                        let (lo_a, hi_a) = ranges[a];
                        let (lo_b, hi_b) = ranges[b];
                        let mut vals = Vec::with_capacity((wa * wb) as usize);
                        for fa in lo_a..=hi_a {
                            if let Some(h) = h {
                                stage_hv(&mut scratch[..k], h, model.v.row(fa as usize));
                            }
                            for fb in lo_b..=hi_b {
                                vals.push(match h {
                                    Some(_) => {
                                        let w_ab = kernel::dot(&scratch[..k], model.v.row(fb as usize));
                                        let d =
                                            kernel::sq_dist(hat.v_hat(fa as usize), hat.v_hat(fb as usize));
                                        w_ab * d
                                    }
                                    None => kernel::sq_dist(hat.v_hat(fa as usize), hat.v_hat(fb as usize)),
                                });
                            }
                        }
                        PairTable::Dense { lo_a, lo_b, wb: wb as u32, vals }
                    }
                    _ => PairTable::Direct,
                };
                pairs.push(table);
            }
        }
        ScanTables { slots, pairs }
    }
}

/// Writes `h ⊙ v` into `row` — the staging step shared by the group
/// pair paths, kept as one function so every path produces the same
/// bits.
fn stage_hv(row: &mut [f64], h: &[f64], v: &[f64]) {
    for ((o, &hx), &vx) in row.iter_mut().zip(h).zip(v) {
        *o = hx * vx;
    }
}

impl<'m> TopNRanker<'m> {
    pub(crate) fn new(model: &'m FrozenModel, template: &[u32], item_slots: &[usize]) -> Self {
        assert!(
            item_slots.iter().all(|&s| s < template.len()),
            "TopNRanker: item slot out of bounds for template of {} fields",
            template.len()
        );
        let mut ctx = Vec::with_capacity(template.len() - item_slots.len());
        let mut ctx_pos = Vec::with_capacity(ctx.capacity());
        for (p, &f) in template.iter().enumerate() {
            if !item_slots.contains(&p) {
                ctx.push(f);
                ctx_pos.push(p);
            }
        }
        let mut ctx_score = model.w0;
        for &f in &ctx {
            ctx_score += model.w[f as usize];
        }
        ctx_score += model.second_order(&ctx);
        let state = Self::build_state(model, &ctx);
        let scratch = vec![0.0; item_slots.len() * model.k()];
        Self { model, item_slots: item_slots.to_vec(), ctx, ctx_pos, ctx_score, state, scratch, tables: None }
    }

    fn build_state(model: &'m FrozenModel, ctx: &[u32]) -> State<'m> {
        let k = model.k();
        match &model.second {
            SecondOrder::Dot => {
                let mut a = vec![0.0; k];
                for &f in ctx {
                    for (slot, &vv) in a.iter_mut().zip(model.v.row(f as usize)) {
                        *slot += vv;
                    }
                }
                State::Decoupled(Cross::Dot { a })
            }
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } => {
                if let Some(h) = h.as_deref() {
                    if ctx.len() <= k {
                        let mut hw = Vec::with_capacity(ctx.len() * k);
                        let mut vh = Vec::with_capacity(ctx.len() * k);
                        let mut q = Vec::with_capacity(ctx.len());
                        for &i in ctx {
                            let vi = model.v.row(i as usize);
                            hw.extend(h.iter().zip(vi).map(|(&hx, &vx)| hx * vx));
                            let (vhi, qi) = hat.row(i as usize);
                            vh.extend_from_slice(vhi);
                            q.push(qi);
                        }
                        return State::Decoupled(Cross::MetricWeightedDirect { hat, h, hw, vh, q });
                    }
                    let (a, b, c) = model.metric_partials(ctx, hat);
                    State::Decoupled(Cross::MetricWeighted { a, b, c, hat, h })
                } else {
                    if ctx.len() <= k {
                        let mut vh = Vec::with_capacity(ctx.len() * k);
                        for &i in ctx {
                            vh.extend_from_slice(hat.v_hat(i as usize));
                        }
                        return State::Decoupled(Cross::MetricUnweightedDirect { hat, vh });
                    }
                    let mut s = vec![0.0; k];
                    let mut u = 0.0;
                    for &f in ctx {
                        let (vhf, qf) = hat.row(f as usize);
                        u += qf;
                        for (slot, &vh) in s.iter_mut().zip(vhf) {
                            *slot += vh;
                        }
                    }
                    State::Decoupled(Cross::MetricUnweighted { s, u, hat })
                }
            }
            SecondOrder::Metric { distance, hat, h } => {
                State::Decoupled(Cross::MetricPairwise { hat, h: h.as_deref(), distance: *distance })
            }
            SecondOrder::Translated { v_trans } => State::Translated { v_trans },
        }
    }

    /// Number of fixed context features.
    pub fn context_len(&self) -> usize {
        self.ctx.len()
    }

    /// The fixed context features (template minus item slots), in
    /// template order — what the IVF index derives its query-side
    /// linearisation from.
    pub(crate) fn context_features(&self) -> &[u32] {
        &self.ctx
    }

    /// `w₀ + Σ_ctx w[f] + second-order(ctx)` — the context-only part of
    /// every candidate's score.
    pub(crate) fn context_score(&self) -> f64 {
        self.ctx_score
    }

    /// Scores one candidate: `item_feats` fills the template's item slots
    /// (same order). Equal to [`FrozenModel::predict`] on the substituted
    /// instance, up to float re-association in the delta paths.
    pub fn score(&mut self, item_feats: &[u32]) -> f64 {
        assert_eq!(
            item_feats.len(),
            self.item_slots.len(),
            "TopNRanker::score: candidate has {} features, template has {} item slots",
            item_feats.len(),
            self.item_slots.len()
        );
        let model = self.model;
        let mut out = self.ctx_score;
        for &f in item_feats {
            out += model.w[f as usize];
        }
        // Cross pairs (context × candidate), per candidate feature.
        match &self.state {
            State::Translated { v_trans } => {
                for (&slot, &f) in self.item_slots.iter().zip(item_feats) {
                    out += self.translated_cross_delta(v_trans, slot, f);
                }
                // Pairs within the candidate group, oriented by slot
                // position.
                out + self.translated_candidate_pairs(v_trans, item_feats)
            }
            State::Decoupled(cross) => {
                for &f in item_feats {
                    out += self.cross_delta(cross, f);
                }
                // Pairs within the candidate group (item id × its
                // attributes).
                out + group_pairs(model, &mut self.scratch, item_feats)
            }
        }
    }

    /// `Σ_{i ∈ ctx} w_ij · D(v̂ᵢ, v̂ⱼ)` for one candidate feature `j`,
    /// from the context partial sums (or, in the pairwise modes, the
    /// context features directly).
    fn cross_delta(&self, cross: &Cross<'m>, j: u32) -> f64 {
        cross_delta(self.model, &self.ctx, cross, j)
    }

    /// TransFM cross pairs for one candidate feature `j` sitting at
    /// template position `slot`: the pair points from the feature that
    /// comes first in the template, exactly as the pairwise reference
    /// iterates the spliced instance.
    fn translated_cross_delta(&self, v_trans: &Matrix, slot: usize, j: u32) -> f64 {
        let model = self.model;
        let mut out = 0.0;
        for (&pos, &i) in self.ctx_pos.iter().zip(&self.ctx) {
            out += if pos < slot {
                model.translated_pair(v_trans, i, j)
            } else {
                model.translated_pair(v_trans, j, i)
            };
        }
        out
    }

    /// TransFM pairs within the candidate group, oriented by the slot
    /// positions (item slots need not be sorted).
    fn translated_candidate_pairs(&self, v_trans: &Matrix, item_feats: &[u32]) -> f64 {
        let model = self.model;
        let mut out = 0.0;
        for a in 0..item_feats.len() {
            for b in a + 1..item_feats.len() {
                let (fa, fb) = (item_feats[a], item_feats[b]);
                out += if self.item_slots[a] < self.item_slots[b] {
                    model.translated_pair(v_trans, fa, fb)
                } else {
                    model.translated_pair(v_trans, fb, fa)
                };
            }
        }
        out
    }

    /// Scores a block of candidate items, appending one score per id to
    /// `out` — bitwise identical to calling [`TopNRanker::score`] on
    /// each id in order. This is the batched entry the sharded scan
    /// loops drive in [`kernel::CAND_BLOCK`]-sized runs: the state
    /// dispatch is hoisted out of the per-candidate loop, and the
    /// decoupled modes read repeated attribute-feature deltas from the
    /// dense `ScanTables` materialised on the first block (table
    /// entries hold the bits the direct evaluation produces, so the
    /// tables cannot change a score).
    pub fn score_block<S: ItemFeatureSource + ?Sized>(&mut self, items: &S, ids: &[u32], out: &mut Vec<f64>) {
        out.reserve(ids.len());
        if !matches!(self.state, State::Decoupled(_)) {
            for &id in ids {
                let score = self.score(items.features_of(id));
                out.push(score);
            }
            return;
        }
        let Self { model, item_slots, ctx, ctx_score, state, scratch, tables, .. } = self;
        let model = *model;
        if let State::Decoupled(cross) = state {
            let tables = tables.get_or_insert_with(|| {
                ScanTables::build(model, ctx, cross, scratch, item_slots.len(), items)
            });
            for &id in ids {
                let feats = items.features_of(id);
                assert_eq!(
                    feats.len(),
                    item_slots.len(),
                    "TopNRanker::score_block: candidate has {} features, template has {} item slots",
                    feats.len(),
                    item_slots.len()
                );
                let mut s = *ctx_score;
                for &f in feats {
                    s += model.w[f as usize];
                }
                for (table, &f) in tables.slots.iter().zip(feats) {
                    s += match table {
                        SlotTable::Dense { lo, vals } => match vals.get(f.wrapping_sub(*lo) as usize) {
                            Some(&v) => v,
                            None => cross_delta(model, ctx, cross, f),
                        },
                        SlotTable::Direct => cross_delta(model, ctx, cross, f),
                    };
                }
                s += group_pairs_tabled(model, scratch, &tables.pairs, feats);
                out.push(s);
            }
        }
    }

    /// [`TopNRanker::score`] computed with the single-accumulator
    /// reference kernels ([`kernel::naive_dot`] and friends) instead of
    /// the chunked ones. This is the honest "old path" baseline the
    /// kernel section of `bench_report` measures against; it is not a
    /// serving entry point.
    #[doc(hidden)]
    pub fn score_scalar(&mut self, item_feats: &[u32]) -> f64 {
        assert_eq!(
            item_feats.len(),
            self.item_slots.len(),
            "TopNRanker::score_scalar: candidate has {} features, template has {} item slots",
            item_feats.len(),
            self.item_slots.len()
        );
        let model = self.model;
        let mut out = self.ctx_score;
        for &f in item_feats {
            out += model.w[f as usize];
        }
        match &self.state {
            State::Translated { v_trans } => {
                for (&slot, &f) in self.item_slots.iter().zip(item_feats) {
                    out += self.translated_cross_delta(v_trans, slot, f);
                }
                out + self.translated_candidate_pairs(v_trans, item_feats)
            }
            State::Decoupled(cross) => {
                for &f in item_feats {
                    out += self.cross_delta_scalar(cross, f);
                }
                out + model.second_order(item_feats)
            }
        }
    }

    /// [`TopNRanker::cross_delta`] with naive single-accumulator loops:
    /// the same formulas evaluated the way the pre-kernel code did.
    fn cross_delta_scalar(&self, cross: &Cross<'m>, j: u32) -> f64 {
        let model = self.model;
        let k = model.k();
        let vj = model.v.row(j as usize);
        match cross {
            Cross::Dot { a } => kernel::naive_dot(a, vj),
            Cross::MetricWeighted { a, b, c, hat, h } => {
                let (vhj, qj) = hat.row(j as usize);
                let mut first = 0.0;
                let mut cross = 0.0;
                for r in 0..k {
                    let hv = h[r] * vj[r];
                    if hv == 0.0 {
                        continue;
                    }
                    first += hv * (b[r] + qj * a[r]);
                    cross += hv * kernel::naive_dot(c.row(r), vhj);
                }
                first - 2.0 * cross
            }
            Cross::MetricUnweighted { s, u, hat } => {
                let (vhj, qj) = hat.row(j as usize);
                u + self.ctx.len() as f64 * qj - 2.0 * kernel::naive_dot(s, vhj)
            }
            Cross::MetricUnweightedDirect { hat, .. } => {
                let vhj = hat.v_hat(j as usize);
                let mut out = 0.0;
                for &i in &self.ctx {
                    out += kernel::naive_sq_dist(hat.v_hat(i as usize), vhj);
                }
                out
            }
            Cross::MetricWeightedDirect { hat, h, .. } => {
                let (vhj, qj) = hat.row(j as usize);
                let mut out = 0.0;
                for &i in &self.ctx {
                    let w_ij = model.pair_weight(Some(h), i, j);
                    let (vhi, qi) = hat.row(i as usize);
                    let d = qi + qj - 2.0 * kernel::naive_dot(vhi, vhj);
                    out += w_ij * d;
                }
                out
            }
            Cross::MetricPairwise { hat, h, distance } => {
                let vhj = hat.v_hat(j as usize);
                let mut out = 0.0;
                for &i in &self.ctx {
                    let w_ij = model.pair_weight(*h, i, j);
                    out += w_ij * distance.eval(hat.v_hat(i as usize), vhj);
                }
                out
            }
        }
    }
}

/// `Σ_{i ∈ ctx} w_ij · D(v̂ᵢ, v̂ⱼ)` for one candidate feature `j` — the
/// body of [`TopNRanker::cross_delta`], free-standing so the block scan
/// can call it while holding the slot memos mutably.
fn cross_delta(model: &FrozenModel, ctx: &[u32], cross: &Cross<'_>, j: u32) -> f64 {
    let k = model.k();
    let vj = model.v.row(j as usize);
    match cross {
        Cross::Dot { a } => dot(a, vj),
        Cross::MetricWeighted { a, b, c, hat, h } => {
            let (vhj, qj) = hat.row(j as usize);
            let mut first = 0.0; // (h⊙vⱼ)·b + qⱼ (h⊙vⱼ)·a
            let mut cross = 0.0; // (h⊙vⱼ)ᵀ C v̂ⱼ
            for r in 0..k {
                let hv = h[r] * vj[r];
                if hv == 0.0 {
                    continue;
                }
                first += hv * (b[r] + qj * a[r]);
                cross += hv * dot(c.row(r), vhj);
            }
            first - 2.0 * cross
        }
        Cross::MetricUnweighted { s, u, hat } => {
            let (vhj, qj) = hat.row(j as usize);
            u + ctx.len() as f64 * qj - 2.0 * dot(s, vhj)
        }
        Cross::MetricUnweightedDirect { hat, vh } => {
            let vhj = hat.v_hat(j as usize);
            let mut out = 0.0;
            for row in vh.chunks_exact(k) {
                out += kernel::sq_dist(row, vhj);
            }
            out
        }
        Cross::MetricWeightedDirect { hat, hw, vh, q, .. } => {
            let (vhj, qj) = hat.row(j as usize);
            let mut out = 0.0;
            for (i, &qi) in q.iter().enumerate() {
                let w_ij = kernel::dot(&hw[i * k..(i + 1) * k], vj);
                let d = qi + qj - 2.0 * kernel::dot(&vh[i * k..(i + 1) * k], vhj);
                out += w_ij * d;
            }
            out
        }
        Cross::MetricPairwise { hat, h, distance } => {
            let vhj = hat.v_hat(j as usize);
            let mut out = 0.0;
            for &i in ctx {
                let w_ij = model.pair_weight(*h, i, j);
                out += w_ij * distance.eval(hat.v_hat(i as usize), vhj);
            }
            out
        }
    }
}

/// Pairs within the candidate group (`Σ_{a<b} w_ab · D(v̂_a, v̂_b)`),
/// evaluated with the chunked kernels for the squared-Euclidean forms:
/// the group's `h ⊙ v_a` rows are staged once in `scratch`, so each
/// pair costs two contiguous kernel calls ([`kernel::dot`] for the
/// weight, [`kernel::sq_dist`] for the distance) instead of a three-way
/// serial fold. The difference-form distance also keeps near-duplicate
/// group members cancellation-free, matching the cross-delta paths.
/// Other second-order modes fall back to the model's own evaluation.
/// Agrees with [`FrozenModel::second_order`] within reassociation
/// rounding (≤ 1e-12 relative).
fn group_pairs(model: &FrozenModel, scratch: &mut [f64], feats: &[u32]) -> f64 {
    let k = model.k();
    match model.second_order_kind() {
        SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } if feats.len() <= k => {
            let mut out = 0.0;
            match h {
                Some(h) => {
                    for (a, &fa) in feats.iter().enumerate() {
                        stage_hv(&mut scratch[a * k..(a + 1) * k], h, model.v.row(fa as usize));
                    }
                    for (a, &fa) in feats.iter().enumerate() {
                        for &fb in &feats[a + 1..] {
                            let w_ab = kernel::dot(&scratch[a * k..(a + 1) * k], model.v.row(fb as usize));
                            let d = kernel::sq_dist(hat.v_hat(fa as usize), hat.v_hat(fb as usize));
                            out += w_ab * d;
                        }
                    }
                }
                None => {
                    for (a, &fa) in feats.iter().enumerate() {
                        for &fb in &feats[a + 1..] {
                            out += kernel::sq_dist(hat.v_hat(fa as usize), hat.v_hat(fb as usize));
                        }
                    }
                }
            }
            out
        }
        _ => model.second_order(feats),
    }
}

/// [`group_pairs`] reading dense [`PairTable`]s where they exist: a
/// tabled pair term was computed with the identical kernel calls at
/// materialisation, so the sum accumulates the same values in the same
/// order — bitwise equal to [`group_pairs`]. `pairs` holds
/// `len(feats)·(len(feats)−1)/2` entries in the pair-loop order
/// `(0,1), (0,2), …, (1,2), …`; [`PairTable::Direct`] entries (and
/// out-of-range lookups) evaluate in place, staging each `h ⊙ v_a` row
/// at most once per candidate.
fn group_pairs_tabled(model: &FrozenModel, scratch: &mut [f64], pairs: &[PairTable], feats: &[u32]) -> f64 {
    let k = model.k();
    match model.second_order_kind() {
        SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } if feats.len() <= k => {
            let mut out = 0.0;
            let mut p = 0;
            // Which `h ⊙ v_a` rows are staged for this candidate (slots
            // past the mask width restage every pair — idempotent, just
            // slower).
            let mut staged = 0u64;
            for (a, &fa) in feats.iter().enumerate() {
                for &fb in &feats[a + 1..] {
                    let table = &pairs[p];
                    p += 1;
                    if let PairTable::Dense { lo_a, lo_b, wb, vals } = table {
                        let ib = fb.wrapping_sub(*lo_b) as u64;
                        let idx = fa.wrapping_sub(*lo_a) as u64 * *wb as u64 + ib;
                        if ib < *wb as u64 {
                            if let Some(&v) = vals.get(idx as usize) {
                                out += v;
                                continue;
                            }
                        }
                    }
                    out += match h {
                        Some(h) => {
                            if a >= 64 || staged & (1 << a) == 0 {
                                if a < 64 {
                                    staged |= 1 << a;
                                }
                                stage_hv(&mut scratch[a * k..(a + 1) * k], h, model.v.row(fa as usize));
                            }
                            let w_ab = kernel::dot(&scratch[a * k..(a + 1) * k], model.v.row(fb as usize));
                            let d = kernel::sq_dist(hat.v_hat(fa as usize), hat.v_hat(fb as usize));
                            w_ab * d
                        }
                        None => kernel::sq_dist(hat.v_hat(fa as usize), hat.v_hat(fb as usize)),
                    };
                }
            }
            out
        }
        _ => model.second_order(feats),
    }
}

/// Context-side partial sums for the low-precision scan, all narrowed
/// to f32 once at construction.
enum LowCross {
    /// Unweighted decoupled form: `u + m·qⱼ − 2⟨s, v̂ⱼ⟩` in f32.
    Unweighted { s: Vec<f32>, u: f32, m: f32 },
    /// Weighted narrow-context form: per context feature `i`, the
    /// precomputed `h ⊙ vᵢ` row, the `v̂ᵢ` row, and `qᵢ` — flattened
    /// `|ctx| × k` row-major.
    WeightedDirect { hv: Vec<f32>, vh: Vec<f32>, q: Vec<f32>, k: usize },
    /// Weighted wide-context partials `a`, `b`, `C` (row-major `k × k`)
    /// and the narrowed transformation weights.
    Weighted { a: Vec<f32>, b: Vec<f32>, c: Vec<f32>, h: Vec<f32>, k: usize },
}

/// Where the candidate-side f32 rows come from.
enum LowRows<'m> {
    /// Straight reads from the f32 tables.
    F32 { lp: &'m LowPrec },
    /// Per-candidate dequantization of the i8 table into one scratch
    /// row (`[v̂ⱼ | vⱼ]` when the table is paired).
    I8 { lp: &'m LowPrec, scratch: Vec<f32> },
}

/// Low-precision candidate scanner: [`TopNRanker`] context state plus
/// f32 (or dequantized-i8) candidate deltas.
///
/// `approx_score` keeps the context score, first-order weights, and
/// within-group second-order term in f64 — only the context × candidate
/// cross delta (the part that streams the big tables) is low precision.
/// Build one with [`FrozenModel::low_ranker`]; construction fails
/// (returns `None`) when the model carries no low-precision tables or
/// its second-order form has no decoupled squared-Euclidean delta, in
/// which case callers fall back to the exact f64 scan.
pub struct LowRanker<'m> {
    base: TopNRanker<'m>,
    cross: LowCross,
    rows: LowRows<'m>,
}

impl<'m> LowRanker<'m> {
    fn new(base: TopNRanker<'m>, lp: &'m LowPrec, precision: Precision) -> Option<Self> {
        let model = base.model;
        let k = model.k();
        let cross = match &model.second {
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } => {
                if let Some(h) = h.as_deref() {
                    if base.ctx.len() <= k {
                        let mut hv = Vec::with_capacity(base.ctx.len() * k);
                        let mut vh = Vec::with_capacity(base.ctx.len() * k);
                        let mut q = Vec::with_capacity(base.ctx.len());
                        for &i in &base.ctx {
                            let vi = model.v.row(i as usize);
                            hv.extend(h.iter().zip(vi).map(|(&hr, &vr)| (hr * vr) as f32));
                            let (vhi, qi) = hat.row(i as usize);
                            vh.extend(vhi.iter().map(|&x| x as f32));
                            q.push(qi as f32);
                        }
                        LowCross::WeightedDirect { hv, vh, q, k }
                    } else {
                        let (a, b, c) = model.metric_partials(&base.ctx, hat);
                        LowCross::Weighted {
                            a: a.iter().map(|&x| x as f32).collect(),
                            b: b.iter().map(|&x| x as f32).collect(),
                            c: c.as_slice().iter().map(|&x| x as f32).collect(),
                            h: lp.h32.clone().unwrap_or_else(|| h.iter().map(|&x| x as f32).collect()),
                            k,
                        }
                    }
                } else {
                    let mut s = vec![0.0f64; k];
                    let mut u = 0.0f64;
                    for &i in &base.ctx {
                        let (vhi, qi) = hat.row(i as usize);
                        u += qi;
                        for (slot, &x) in s.iter_mut().zip(vhi) {
                            *slot += x;
                        }
                    }
                    LowCross::Unweighted {
                        s: s.iter().map(|&x| x as f32).collect(),
                        u: u as f32,
                        m: base.ctx.len() as f32,
                    }
                }
            }
            _ => return None,
        };
        let rows = match precision {
            Precision::F64 => return None,
            Precision::F32 => LowRows::F32 { lp },
            Precision::I8 => LowRows::I8 { lp, scratch: vec![0.0f32; lp.qhat.row_width()] },
        };
        Some(Self { base, cross, rows })
    }

    /// Approximate score of one candidate: f64 context score and
    /// first-order terms, f32 cross delta per item feature, exact f64
    /// within-group second-order term.
    pub fn approx_score(&mut self, item_feats: &[u32]) -> f64 {
        assert_eq!(
            item_feats.len(),
            self.base.item_slots.len(),
            "LowRanker::approx_score: candidate has {} features, template has {} item slots",
            item_feats.len(),
            self.base.item_slots.len()
        );
        let model = self.base.model;
        let mut out = self.base.ctx_score;
        for &f in item_feats {
            out += model.w[f as usize];
        }
        for &f in item_feats {
            out += self.cross_delta32(f) as f64;
        }
        out + model.second_order(item_feats)
    }

    /// Block twin of [`LowRanker::approx_score`], mirroring
    /// [`TopNRanker::score_block`].
    pub fn approx_score_block<S: ItemFeatureSource + ?Sized>(
        &mut self,
        items: &S,
        ids: &[u32],
        out: &mut Vec<f64>,
    ) {
        out.reserve(ids.len());
        for &id in ids {
            let score = self.approx_score(items.features_of(id));
            out.push(score);
        }
    }

    /// The f32 cross delta for one candidate feature `j`.
    fn cross_delta32(&mut self, j: u32) -> f32 {
        let j = j as usize;
        let (vhj, qj, vj): (&[f32], f32, Option<&[f32]>) = match &mut self.rows {
            LowRows::F32 { lp } => {
                let (vh, q) = lp.hat32.row(j);
                (vh, q, lp.v32_row(j))
            }
            LowRows::I8 { lp, scratch } => {
                lp.qhat.dequant_into(j, scratch);
                let k = lp.qhat.k();
                let (vh, v) = scratch.split_at(k);
                (vh, lp.qhat.q(j), lp.qhat.paired().then_some(v))
            }
        };
        match &self.cross {
            LowCross::Unweighted { s, u, m } => u + m * qj - 2.0 * kernel::dot_f32(s, vhj),
            LowCross::WeightedDirect { hv, vh, q, k } => {
                // `vj` is always present here: the weighted cross is only
                // built when `LowPrec` carries the narrowed `V` tables.
                let Some(vj) = vj else { return 0.0 };
                let mut out = 0.0f32;
                for ((hvi, vhi), &qi) in hv.chunks_exact(*k).zip(vh.chunks_exact(*k)).zip(q) {
                    let w_ij = kernel::dot_f32(hvi, vj);
                    let d = qi + qj - 2.0 * kernel::dot_f32(vhi, vhj);
                    out += w_ij * d;
                }
                out
            }
            LowCross::Weighted { a, b, c, h, k } => {
                let Some(vj) = vj else { return 0.0 };
                let mut first = 0.0f32;
                let mut cross = 0.0f32;
                for r in 0..*k {
                    let hv = h[r] * vj[r];
                    if hv == 0.0 {
                        continue;
                    }
                    first += hv * (b[r] + qj * a[r]);
                    cross += hv * kernel::dot_f32(&c[r * k..(r + 1) * k], vhj);
                }
                first - 2.0 * cross
            }
        }
    }
}

/// How many candidates the i8 probe keeps for the exact f64 re-rank: an
/// 8x (and at least `n + 64`) pool absorbs quantization-induced
/// reordering near the cutoff — including the compounding with IVF
/// pruning, whose skip threshold tracks the approximate probe heap —
/// so recall stays at the exact scan's level while returned scores stay
/// bitwise the model's. The re-rank itself is a few dozen exact scores
/// per request, noise next to the catalogue scan.
pub fn rerank_pool(n: usize) -> usize {
    (8 * n).max(n + 64)
}

impl FrozenModel {
    /// Builds a low-precision candidate scanner over the same template
    /// contract as [`FrozenModel::ranker`]. Returns `None` — callers
    /// fall back to the exact f64 scan — when `precision` is
    /// [`Precision::F64`], when no low-precision tables were built
    /// ([`FrozenModel::with_precision`]), or when the model's
    /// second-order form has no decoupled squared-Euclidean delta.
    pub fn low_ranker<'m>(
        &'m self,
        template: &[u32],
        item_slots: &[usize],
        precision: Precision,
    ) -> Option<LowRanker<'m>> {
        let lp = self.lowp_tables()?;
        LowRanker::new(self.ranker(template, item_slots), lp, precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::Instance;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;

    fn metric_model(weighted: bool, distance: Distance, seed: u64) -> FrozenModel {
        let n = 40;
        let k = 5;
        let mut rng = seeded_rng(seed);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_hat = normal(&mut rng, n, k, 0.0, 0.5);
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let h = weighted.then(|| normal(&mut rng, 1, k, 0.0, 0.5).into_vec());
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        FrozenModel::from_parts(0.1, w, v, SecondOrder::metric(v_hat, q, h, distance))
    }

    fn translated_model(seed: u64) -> FrozenModel {
        let n = 40;
        let k = 5;
        let mut rng = seeded_rng(seed);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_trans = normal(&mut rng, n, k, 0.0, 0.3);
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        FrozenModel::from_parts(-0.3, w, v, SecondOrder::Translated { v_trans })
    }

    /// Template [user, item, user-attr, item-attr] with slots 1 and 3
    /// varying: the ranker must equal a fresh full prediction per
    /// candidate for every mode.
    #[test]
    fn ranker_matches_full_prediction_for_all_modes() {
        let models = [
            ("weighted-euclidean", metric_model(true, Distance::SquaredEuclidean, 1)),
            ("unweighted-euclidean", metric_model(false, Distance::SquaredEuclidean, 2)),
            ("manhattan", metric_model(true, Distance::Manhattan, 3)),
            ("chebyshev", metric_model(false, Distance::Chebyshev, 7)),
            ("cosine", metric_model(true, Distance::Cosine, 4)),
            ("translated", translated_model(5)),
        ];
        for (name, model) in &models {
            let template = vec![0u32, 10, 30, 20];
            let mut ranker = model.ranker(&template, &[1, 3]);
            assert_eq!(ranker.context_len(), 2);
            for cand in 0u32..8 {
                let item_feats = [10 + cand, 20 + cand];
                let got = ranker.score(&item_feats);
                let inst = Instance::new(vec![0, 10 + cand, 30, 20 + cand], 1.0);
                let want = model.predict(&inst);
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "{name} candidate {cand}: ranker {got} vs predict {want}"
                );
            }
        }
    }

    /// The translated mode is order-dependent, so it must stay exact for
    /// single-slot candidates anywhere in the template — including the
    /// first position, where every cross pair flips direction.
    #[test]
    fn translated_ranker_respects_pair_orientation() {
        let model = translated_model(9);
        for item_slot in [0usize, 1, 2, 3] {
            let template = vec![4u32, 12, 25, 33];
            let mut ranker = model.ranker(&template, &[item_slot]);
            for cand in 10u32..18 {
                let mut feats = template.clone();
                feats[item_slot] = cand;
                let got = ranker.score(&[cand]);
                let want = model.predict(&Instance::new(feats, 1.0));
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "slot {item_slot} cand {cand}: {got} vs {want}"
                );
            }
        }
    }

    /// Contexts wider than `k` switch to the Eq. 10/11 partial sums; the
    /// scores must still match full predictions.
    #[test]
    fn wide_context_uses_partial_sums_and_matches() {
        let n = 40;
        let k = 3; // narrower than the 5-field context below
        let mut rng = seeded_rng(8);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_hat = normal(&mut rng, n, k, 0.0, 0.5);
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let h = Some(normal(&mut rng, 1, k, 0.0, 0.5).into_vec());
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        let model =
            FrozenModel::from_parts(0.2, w, v, SecondOrder::metric(v_hat, q, h, Distance::SquaredEuclidean));
        let template = vec![0u32, 5, 11, 17, 23, 30];
        let mut ranker = model.ranker(&template, &[5]);
        assert_eq!(ranker.context_len(), 5);
        for cand in 30u32..38 {
            let got = ranker.score(&[cand]);
            let want = model.predict(&Instance::new(vec![0, 5, 11, 17, 23, cand], 1.0));
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn ranker_handles_single_item_slot_and_dot_models() {
        let mut rng = seeded_rng(9);
        let v = normal(&mut rng, 30, 4, 0.0, 0.4);
        let w = normal(&mut rng, 1, 30, 0.0, 0.1).into_vec();
        let model = FrozenModel::from_parts(0.0, w, v, SecondOrder::Dot);
        let template = vec![3u32, 12, 25];
        let mut ranker = model.ranker(&template, &[1]);
        for cand in 10u32..20 {
            let got = ranker.score(&[cand]);
            let want = model.predict(&Instance::new(vec![3, cand, 25], 1.0));
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    /// Regression (catastrophic cancellation): two items whose V̂ rows
    /// differ in ONE low-order mantissa bit must keep their true order.
    /// The expanded `u + m·q_j − 2⟨s, v̂_j⟩` form loses the distinction
    /// — its three O(‖v̂‖²) terms round independently, burying a
    /// one-ulp item difference under rounding noise — so narrow
    /// contexts take the direct `Σᵢ ‖v̂ᵢ − v̂ⱼ‖²` path, which subtracts
    /// before squaring: the duplicate's distance is exactly 0 and the
    /// perturbed item's exactly δ², matching the pairwise reference
    /// bitwise.
    #[test]
    fn near_duplicate_items_keep_their_true_order() {
        let n = 8;
        let k = 4;
        let mut rng = seeded_rng(11);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let mut v_hat = normal(&mut rng, n, k, 0.0, 0.5);
        // Item 2 duplicates the single context row 0 exactly; item 3
        // additionally flips the lowest mantissa bit of coordinate 0.
        for c in 0..k {
            let x = v_hat.row(0)[c];
            v_hat.row_mut(2)[c] = x;
            v_hat.row_mut(3)[c] = x;
        }
        let perturbed = f64::from_bits(v_hat.row(3)[0].to_bits() + 1);
        v_hat.row_mut(3)[0] = perturbed;
        let delta = v_hat.row(0)[0] - perturbed;
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        // Zero bias and linear weights: with a single-member context the
        // whole score is the one cross distance, so nothing can absorb
        // the δ² the fix is meant to preserve.
        let model = FrozenModel::from_parts(
            0.0,
            vec![0.0; n],
            v,
            SecondOrder::metric(v_hat, q, None, Distance::SquaredEuclidean),
        );
        let template = vec![0u32, 2];
        let mut ranker = model.ranker(&template, &[1]);
        let dup = ranker.score(&[2]);
        let near = ranker.score(&[3]);
        assert_ne!(dup.to_bits(), near.to_bits(), "a one-ulp V-hat difference must survive the delta scan");
        // Subtract-before-square is exact here, not merely close: the
        // duplicate's distance is 0 and the perturbed item's exactly δ².
        assert_eq!(dup, 0.0, "exact duplicate of the context row scores a zero distance");
        assert_eq!(
            near.to_bits(),
            (delta * delta).to_bits(),
            "the perturbed item's distance is exactly δ²: {near}"
        );
    }

    #[test]
    #[should_panic(expected = "item slot out of bounds")]
    fn out_of_bounds_slots_are_rejected() {
        let model = metric_model(true, Distance::SquaredEuclidean, 5);
        let _ = model.ranker(&[0, 1], &[5]);
    }

    #[test]
    #[should_panic(expected = "item slots")]
    fn wrong_candidate_arity_is_rejected() {
        let model = metric_model(true, Distance::SquaredEuclidean, 6);
        let mut ranker = model.ranker(&[0, 10, 20], &[1]);
        let _ = ranker.score(&[1, 2]);
    }
}
