//! Top-N ranking over a frozen model.
//!
//! Leave-one-out ranking scores one context (user + side attributes)
//! against hundreds of candidate items. The autograd path rebuilds the
//! full forward for every candidate — `O(items × full-forward)`. The
//! ranker here computes the context-side partial sums of Eq. 10/11
//! (`a`, `b`, `C` — or `s`, `u` without the transformation weight) once,
//! then scores each candidate with only the item-side delta:
//! `O(full-forward + items × item-delta)`, the delta being `O(k²)` per
//! candidate item feature (and `O(k)` in the unweighted and vanilla-FM
//! cases).
//!
//! Modes without a decoupled form — the non-Euclidean metric distances
//! and TransFM's order-dependent translated distance — still score by
//! item delta: the context-side pairs are folded into the cached context
//! score once, and each candidate pays only its `O(|ctx|·k)` cross pairs
//! against the fixed context plus its within-group pairs. No mode
//! re-evaluates the full spliced template, and no mode allocates per
//! score.
//!
//! A candidate is a *group* of features (the item id plus its attribute
//! values), declared as slot positions in a template instance, so
//! datasets with item-side attributes rank exactly like plain
//! user × item ones.

use crate::frozen::{dot, FrozenModel, HatQ, SecondOrder};
use gmlfm_core::Distance;
use gmlfm_tensor::Matrix;

/// Context-side scoring state, by second-order mode. Each variant
/// carries the model tables its delta formula reads, attached when the
/// state is built — so the per-candidate dispatch is a single exhaustive
/// match with no "mode disagrees with state" arm to fall into.
enum State<'m> {
    /// Modes whose cross pairs decouple per candidate feature; scored
    /// through [`Cross`].
    Decoupled(Cross<'m>),
    /// TransFM: cross pairs against the fixed context, oriented by
    /// template position (the translated distance is order-dependent) —
    /// `O(|ctx|·k)` per candidate feature, allocation-free.
    Translated { v_trans: &'m Matrix },
}

/// Context-side partial sums for the decoupled modes.
enum Cross<'m> {
    /// Vanilla FM: `a = Σ_ctx v_f` — `O(k)` per candidate feature.
    Dot { a: Vec<f64> },
    /// Weighted metric (Eq. 10/11) partial sums: `a = Σ v_f`,
    /// `b = Σ q_f v_f`, `C = Σ v_f v̂_fᵀ` — `O(k²)` per candidate
    /// feature, independent of the context size. Built when the context
    /// is wide (`|ctx| > k`).
    MetricWeighted { a: Vec<f64>, b: Vec<f64>, c: Matrix, hat: &'m HatQ, h: &'m [f64] },
    /// Weighted metric with a narrow context: cross pairs iterated
    /// directly over the context features — `O(|ctx|·k)` per candidate
    /// feature, allocation-free, cheaper than the `O(k²)` partials when
    /// `|ctx| < k`.
    MetricWeightedDirect { hat: &'m HatQ, h: &'m [f64] },
    /// Unweighted metric: `s = Σ v̂_f`, `u = Σ q_f` — `O(k)` per
    /// candidate feature.
    MetricUnweighted { s: Vec<f64>, u: f64, hat: &'m HatQ },
    /// Metric distances without a decoupled form (Manhattan, Chebyshev,
    /// cosine): cross pairs evaluated directly against the fixed context
    /// — `O(|ctx|·k)` per candidate feature, allocation-free.
    MetricPairwise { hat: &'m HatQ, h: Option<&'m [f64]>, distance: Distance },
}

/// Scores candidate items against a fixed context in `O(item-delta)` per
/// candidate. Build one with [`FrozenModel::ranker`].
pub struct TopNRanker<'m> {
    model: &'m FrozenModel,
    item_slots: Vec<usize>,
    /// Fixed context features (template minus item slots), in template
    /// order.
    ctx: Vec<u32>,
    /// Template positions of the context features (drives the pair
    /// orientation in the order-dependent TransFM mode).
    ctx_pos: Vec<usize>,
    /// `w₀ + Σ_ctx w[f] + second-order(ctx)`.
    ctx_score: f64,
    state: State<'m>,
}

impl<'m> TopNRanker<'m> {
    pub(crate) fn new(model: &'m FrozenModel, template: &[u32], item_slots: &[usize]) -> Self {
        assert!(
            item_slots.iter().all(|&s| s < template.len()),
            "TopNRanker: item slot out of bounds for template of {} fields",
            template.len()
        );
        let mut ctx = Vec::with_capacity(template.len() - item_slots.len());
        let mut ctx_pos = Vec::with_capacity(ctx.capacity());
        for (p, &f) in template.iter().enumerate() {
            if !item_slots.contains(&p) {
                ctx.push(f);
                ctx_pos.push(p);
            }
        }
        let mut ctx_score = model.w0;
        for &f in &ctx {
            ctx_score += model.w[f as usize];
        }
        ctx_score += model.second_order(&ctx);
        let state = Self::build_state(model, &ctx);
        Self { model, item_slots: item_slots.to_vec(), ctx, ctx_pos, ctx_score, state }
    }

    fn build_state(model: &'m FrozenModel, ctx: &[u32]) -> State<'m> {
        let k = model.k();
        match &model.second {
            SecondOrder::Dot => {
                let mut a = vec![0.0; k];
                for &f in ctx {
                    for (slot, &vv) in a.iter_mut().zip(model.v.row(f as usize)) {
                        *slot += vv;
                    }
                }
                State::Decoupled(Cross::Dot { a })
            }
            SecondOrder::Metric { distance: Distance::SquaredEuclidean, hat, h } => {
                if let Some(h) = h.as_deref() {
                    if ctx.len() <= k {
                        return State::Decoupled(Cross::MetricWeightedDirect { hat, h });
                    }
                    let (a, b, c) = model.metric_partials(ctx, hat);
                    State::Decoupled(Cross::MetricWeighted { a, b, c, hat, h })
                } else {
                    let mut s = vec![0.0; k];
                    let mut u = 0.0;
                    for &f in ctx {
                        let (vhf, qf) = hat.row(f as usize);
                        u += qf;
                        for (slot, &vh) in s.iter_mut().zip(vhf) {
                            *slot += vh;
                        }
                    }
                    State::Decoupled(Cross::MetricUnweighted { s, u, hat })
                }
            }
            SecondOrder::Metric { distance, hat, h } => {
                State::Decoupled(Cross::MetricPairwise { hat, h: h.as_deref(), distance: *distance })
            }
            SecondOrder::Translated { v_trans } => State::Translated { v_trans },
        }
    }

    /// Number of fixed context features.
    pub fn context_len(&self) -> usize {
        self.ctx.len()
    }

    /// The fixed context features (template minus item slots), in
    /// template order — what the IVF index derives its query-side
    /// linearisation from.
    pub(crate) fn context_features(&self) -> &[u32] {
        &self.ctx
    }

    /// `w₀ + Σ_ctx w[f] + second-order(ctx)` — the context-only part of
    /// every candidate's score.
    pub(crate) fn context_score(&self) -> f64 {
        self.ctx_score
    }

    /// Scores one candidate: `item_feats` fills the template's item slots
    /// (same order). Equal to [`FrozenModel::predict`] on the substituted
    /// instance, up to float re-association in the delta paths.
    pub fn score(&mut self, item_feats: &[u32]) -> f64 {
        assert_eq!(
            item_feats.len(),
            self.item_slots.len(),
            "TopNRanker::score: candidate has {} features, template has {} item slots",
            item_feats.len(),
            self.item_slots.len()
        );
        let model = self.model;
        let mut out = self.ctx_score;
        for &f in item_feats {
            out += model.w[f as usize];
        }
        // Cross pairs (context × candidate), per candidate feature.
        match &self.state {
            State::Translated { v_trans } => {
                for (&slot, &f) in self.item_slots.iter().zip(item_feats) {
                    out += self.translated_cross_delta(v_trans, slot, f);
                }
                // Pairs within the candidate group, oriented by slot
                // position.
                out + self.translated_candidate_pairs(v_trans, item_feats)
            }
            State::Decoupled(cross) => {
                for &f in item_feats {
                    out += self.cross_delta(cross, f);
                }
                // Pairs within the candidate group (item id × its
                // attributes).
                out + model.second_order(item_feats)
            }
        }
    }

    /// `Σ_{i ∈ ctx} w_ij · D(v̂ᵢ, v̂ⱼ)` for one candidate feature `j`,
    /// from the context partial sums (or, in the pairwise modes, the
    /// context features directly).
    fn cross_delta(&self, cross: &Cross<'m>, j: u32) -> f64 {
        let model = self.model;
        let k = model.k();
        let vj = model.v.row(j as usize);
        match cross {
            Cross::Dot { a } => dot(a, vj),
            Cross::MetricWeighted { a, b, c, hat, h } => {
                let (vhj, qj) = hat.row(j as usize);
                let mut first = 0.0; // (h⊙vⱼ)·b + qⱼ (h⊙vⱼ)·a
                let mut cross = 0.0; // (h⊙vⱼ)ᵀ C v̂ⱼ
                for r in 0..k {
                    let hv = h[r] * vj[r];
                    if hv == 0.0 {
                        continue;
                    }
                    first += hv * (b[r] + qj * a[r]);
                    cross += hv * dot(c.row(r), vhj);
                }
                first - 2.0 * cross
            }
            Cross::MetricUnweighted { s, u, hat } => {
                let (vhj, qj) = hat.row(j as usize);
                u + self.ctx.len() as f64 * qj - 2.0 * dot(s, vhj)
            }
            Cross::MetricWeightedDirect { hat, h } => {
                let (vhj, qj) = hat.row(j as usize);
                let mut out = 0.0;
                for &i in &self.ctx {
                    let w_ij = model.pair_weight(Some(h), i, j);
                    let (vhi, qi) = hat.row(i as usize);
                    let d = qi + qj - 2.0 * dot(vhi, vhj);
                    out += w_ij * d;
                }
                out
            }
            Cross::MetricPairwise { hat, h, distance } => {
                let vhj = hat.v_hat(j as usize);
                let mut out = 0.0;
                for &i in &self.ctx {
                    let w_ij = model.pair_weight(*h, i, j);
                    out += w_ij * distance.eval(hat.v_hat(i as usize), vhj);
                }
                out
            }
        }
    }

    /// TransFM cross pairs for one candidate feature `j` sitting at
    /// template position `slot`: the pair points from the feature that
    /// comes first in the template, exactly as the pairwise reference
    /// iterates the spliced instance.
    fn translated_cross_delta(&self, v_trans: &Matrix, slot: usize, j: u32) -> f64 {
        let model = self.model;
        let mut out = 0.0;
        for (&pos, &i) in self.ctx_pos.iter().zip(&self.ctx) {
            out += if pos < slot {
                model.translated_pair(v_trans, i, j)
            } else {
                model.translated_pair(v_trans, j, i)
            };
        }
        out
    }

    /// TransFM pairs within the candidate group, oriented by the slot
    /// positions (item slots need not be sorted).
    fn translated_candidate_pairs(&self, v_trans: &Matrix, item_feats: &[u32]) -> f64 {
        let model = self.model;
        let mut out = 0.0;
        for a in 0..item_feats.len() {
            for b in a + 1..item_feats.len() {
                let (fa, fb) = (item_feats[a], item_feats[b]);
                out += if self.item_slots[a] < self.item_slots[b] {
                    model.translated_pair(v_trans, fa, fb)
                } else {
                    model.translated_pair(v_trans, fb, fa)
                };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::Instance;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;

    fn metric_model(weighted: bool, distance: Distance, seed: u64) -> FrozenModel {
        let n = 40;
        let k = 5;
        let mut rng = seeded_rng(seed);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_hat = normal(&mut rng, n, k, 0.0, 0.5);
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let h = weighted.then(|| normal(&mut rng, 1, k, 0.0, 0.5).into_vec());
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        FrozenModel::from_parts(0.1, w, v, SecondOrder::metric(v_hat, q, h, distance))
    }

    fn translated_model(seed: u64) -> FrozenModel {
        let n = 40;
        let k = 5;
        let mut rng = seeded_rng(seed);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_trans = normal(&mut rng, n, k, 0.0, 0.3);
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        FrozenModel::from_parts(-0.3, w, v, SecondOrder::Translated { v_trans })
    }

    /// Template [user, item, user-attr, item-attr] with slots 1 and 3
    /// varying: the ranker must equal a fresh full prediction per
    /// candidate for every mode.
    #[test]
    fn ranker_matches_full_prediction_for_all_modes() {
        let models = [
            ("weighted-euclidean", metric_model(true, Distance::SquaredEuclidean, 1)),
            ("unweighted-euclidean", metric_model(false, Distance::SquaredEuclidean, 2)),
            ("manhattan", metric_model(true, Distance::Manhattan, 3)),
            ("chebyshev", metric_model(false, Distance::Chebyshev, 7)),
            ("cosine", metric_model(true, Distance::Cosine, 4)),
            ("translated", translated_model(5)),
        ];
        for (name, model) in &models {
            let template = vec![0u32, 10, 30, 20];
            let mut ranker = model.ranker(&template, &[1, 3]);
            assert_eq!(ranker.context_len(), 2);
            for cand in 0u32..8 {
                let item_feats = [10 + cand, 20 + cand];
                let got = ranker.score(&item_feats);
                let inst = Instance::new(vec![0, 10 + cand, 30, 20 + cand], 1.0);
                let want = model.predict(&inst);
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "{name} candidate {cand}: ranker {got} vs predict {want}"
                );
            }
        }
    }

    /// The translated mode is order-dependent, so it must stay exact for
    /// single-slot candidates anywhere in the template — including the
    /// first position, where every cross pair flips direction.
    #[test]
    fn translated_ranker_respects_pair_orientation() {
        let model = translated_model(9);
        for item_slot in [0usize, 1, 2, 3] {
            let template = vec![4u32, 12, 25, 33];
            let mut ranker = model.ranker(&template, &[item_slot]);
            for cand in 10u32..18 {
                let mut feats = template.clone();
                feats[item_slot] = cand;
                let got = ranker.score(&[cand]);
                let want = model.predict(&Instance::new(feats, 1.0));
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "slot {item_slot} cand {cand}: {got} vs {want}"
                );
            }
        }
    }

    /// Contexts wider than `k` switch to the Eq. 10/11 partial sums; the
    /// scores must still match full predictions.
    #[test]
    fn wide_context_uses_partial_sums_and_matches() {
        let n = 40;
        let k = 3; // narrower than the 5-field context below
        let mut rng = seeded_rng(8);
        let v = normal(&mut rng, n, k, 0.0, 0.5);
        let v_hat = normal(&mut rng, n, k, 0.0, 0.5);
        let q: Vec<f64> = (0..n).map(|r| dot(v_hat.row(r), v_hat.row(r))).collect();
        let h = Some(normal(&mut rng, 1, k, 0.0, 0.5).into_vec());
        let w = normal(&mut rng, 1, n, 0.0, 0.1).into_vec();
        let model =
            FrozenModel::from_parts(0.2, w, v, SecondOrder::metric(v_hat, q, h, Distance::SquaredEuclidean));
        let template = vec![0u32, 5, 11, 17, 23, 30];
        let mut ranker = model.ranker(&template, &[5]);
        assert_eq!(ranker.context_len(), 5);
        for cand in 30u32..38 {
            let got = ranker.score(&[cand]);
            let want = model.predict(&Instance::new(vec![0, 5, 11, 17, 23, cand], 1.0));
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    fn ranker_handles_single_item_slot_and_dot_models() {
        let mut rng = seeded_rng(9);
        let v = normal(&mut rng, 30, 4, 0.0, 0.4);
        let w = normal(&mut rng, 1, 30, 0.0, 0.1).into_vec();
        let model = FrozenModel::from_parts(0.0, w, v, SecondOrder::Dot);
        let template = vec![3u32, 12, 25];
        let mut ranker = model.ranker(&template, &[1]);
        for cand in 10u32..20 {
            let got = ranker.score(&[cand]);
            let want = model.predict(&Instance::new(vec![3, cand, 25], 1.0));
            assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "item slot out of bounds")]
    fn out_of_bounds_slots_are_rejected() {
        let model = metric_model(true, Distance::SquaredEuclidean, 5);
        let _ = model.ranker(&[0, 1], &[5]);
    }

    #[test]
    #[should_panic(expected = "item slots")]
    fn wrong_candidate_arity_is_rejected() {
        let model = metric_model(true, Distance::SquaredEuclidean, 6);
        let mut ranker = model.ranker(&[0, 10, 20], &[1]);
        let _ = ranker.score(&[1, 2]);
    }
}
