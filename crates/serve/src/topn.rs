//! Sharded top-N retrieval: bounded-heap selection with a deterministic
//! merge.
//!
//! The serving workload the paper optimises for (Eq. 10/11 decoupled
//! scoring) ranks a whole catalogue per request but returns only the
//! best `n` — and `n` is tiny next to the catalogue. Scoring every
//! candidate is unavoidable without an index, but *sorting* every
//! candidate is not: this module selects the top `n` with one bounded
//! heap per contiguous candidate shard, so a request over `C` candidates
//! costs `O(C·k + C·log n)` time and `O(shards·n)` selection memory
//! instead of the full sort's `O(C·k + C·log C)` time and `O(C)` score
//! buffer. At a million items and `n = 10` the difference is the sort
//! and the 16 MB score vector, every request.
//!
//! Three guarantees make the fast path a drop-in replacement for the
//! full sort, not an approximation of it:
//!
//! 1. **Total order.** Ranking uses [`rank_cmp`] — score descending,
//!    ties broken by ascending item id — everywhere: inside the heaps,
//!    in the shard merge, and in the full-sort reference the tests pin
//!    against. Equal-score candidates order identically on every path.
//! 2. **Threshold rejection.** Once a shard's heap is full, a candidate
//!    scoring below the shard's current worst retained entry (the
//!    [`TopNHeap::threshold`]) is rejected in one comparison without
//!    entering the heap.
//! 3. **Deterministic merge.** Shard results are concatenated in shard
//!    order and resolved by the same total order, so the final ranking
//!    is independent of shard count and thread count — pinned by the
//!    `retrieval_parity` proptests across shard counts {1, 3, 8} and
//!    threads {1, 2, 5}.

use crate::frozen::FrozenModel;
use crate::index::ItemFeatureSource;
use crate::kernel;
use crate::lowp::Precision;
use crate::rank::rerank_pool;
use gmlfm_par::Parallelism;
use std::cmp::Ordering;
use std::num::NonZeroUsize;

/// The retrieval total order over `(item, score)` pairs, best first:
/// score descending ([`f64::total_cmp`], so not even NaN breaks
/// totality), then item id ascending.
///
/// Every ranking surface — [`TopNHeap`], [`merge_sharded`], the
/// request-path sort in `gmlfm-service`, the full-sort references in
/// tests — uses this one comparator, which is what makes equal-score
/// ordering an explicit contract instead of a sort-implementation
/// accident.
#[inline]
pub fn rank_cmp(a: &(u32, f64), b: &(u32, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// A bounded selection heap holding the `n` best `(item, score)` entries
/// seen so far under [`rank_cmp`].
///
/// Internally a binary max-heap keyed by *badness* (the root is the
/// worst retained entry), so a full heap accepts a new candidate only
/// when it beats the root — one comparison per rejected candidate, one
/// `O(log n)` sift per accepted one.
#[derive(Debug, Clone)]
pub struct TopNHeap {
    n: usize,
    /// Max-heap by [`rank_cmp`] (`Greater` = worse = closer to the root).
    heap: Vec<(u32, f64)>,
}

impl TopNHeap {
    /// An empty heap retaining at most `n` entries (`n = 0` retains
    /// nothing and rejects every push).
    pub fn new(n: usize) -> Self {
        // A request's n is usually tiny relative to the candidate count;
        // reserving it up front keeps the fill phase allocation-free.
        Self { n, heap: Vec::with_capacity(n.min(1024)) }
    }

    /// Number of retained entries (`<= n`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current worst retained entry once the heap is full — the
    /// score/id cutoff a new candidate must beat to enter. `None` while
    /// the heap still has free slots (everything is accepted).
    pub fn threshold(&self) -> Option<(u32, f64)> {
        if self.n > 0 && self.heap.len() == self.n {
            Some(self.heap[0])
        } else {
            None
        }
    }

    /// Offers one candidate; returns whether it was retained. A
    /// candidate not beating a full heap's [`threshold`] under
    /// [`rank_cmp`] is rejected without entering the heap.
    ///
    /// [`threshold`]: TopNHeap::threshold
    pub fn push(&mut self, item: u32, score: f64) -> bool {
        if self.n == 0 {
            return false;
        }
        let entry = (item, score);
        if self.heap.len() < self.n {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
            return true;
        }
        // Full: reject unless strictly better than the worst retained.
        if rank_cmp(&entry, &self.heap[0]) != Ordering::Less {
            return false;
        }
        self.heap[0] = entry;
        self.sift_down(0);
        true
    }

    /// The retained entries in heap order (no particular ranking) — the
    /// shape the leave-one-out metrics consume, where only membership
    /// and the `score >= positive` count matter.
    pub fn retained(&self) -> &[(u32, f64)] {
        &self.heap
    }

    /// Consumes the heap into its entries ranked best-first under
    /// [`rank_cmp`].
    pub fn into_sorted(self) -> Vec<(u32, f64)> {
        let mut out = self.heap;
        out.sort_by(rank_cmp);
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if rank_cmp(&self.heap[i], &self.heap[parent]) != Ordering::Greater {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < self.heap.len() && rank_cmp(&self.heap[l], &self.heap[worst]) == Ordering::Greater {
                worst = l;
            }
            if r < self.heap.len() && rank_cmp(&self.heap[r], &self.heap[worst]) == Ordering::Greater {
                worst = r;
            }
            if worst == i {
                return;
            }
            self.heap.swap(i, worst);
            i = worst;
        }
    }
}

/// Merges per-shard top-`n` rankings into the global top `n`:
/// concatenate in shard order, resolve with [`rank_cmp`], truncate.
///
/// Because [`rank_cmp`] is total, the result is the unique global top
/// `n` — independent of shard boundaries and of the order shards
/// finished in. (Duplicate candidates are legal and retained: two copies
/// of one item compare `Equal` and are indistinguishable, so any
/// interleaving of them is the same ranking.)
pub fn merge_sharded(n: usize, shards: impl IntoIterator<Item = Vec<(u32, f64)>>) -> Vec<(u32, f64)> {
    let mut all: Vec<(u32, f64)> = shards.into_iter().flatten().collect();
    all.sort_by(rank_cmp);
    all.truncate(n);
    all
}

/// Sharded bounded-heap top-N over a candidate list: `candidates` is cut
/// into `shards` contiguous ranges ([`gmlfm_par::block_ranges`]), each
/// shard builds its own scoring state with `init` (one
/// [`crate::TopNRanker`] per shard in the serving path — the context
/// partials are computed once per shard, not once per candidate) and
/// fills a [`TopNHeap`] of size `n`, and the shard heaps are merged with
/// [`merge_sharded`]. Shards are fanned across the `gmlfm-par` pool
/// under `par`.
///
/// The result is item-for-item identical — scores bitwise, tie order
/// included — to the full-sort reference
/// `sort_by(rank_cmp) + truncate(n)` over the same scores, at every
/// shard count and every thread count, because `score` is pure per
/// candidate and [`rank_cmp`] is total.
pub fn sharded_top_n<S>(
    candidates: &[u32],
    n: usize,
    shards: NonZeroUsize,
    par: Parallelism,
    init: impl Fn() -> S + Sync,
    score: impl Fn(&mut S, u32) -> f64 + Sync,
) -> Vec<(u32, f64)> {
    let ranges = gmlfm_par::block_ranges(candidates.len(), shards.get());
    let shard_tops = gmlfm_par::par_map(par, &ranges, |range| {
        let mut state = init();
        let mut heap = TopNHeap::new(n);
        for &item in &candidates[range.clone()] {
            heap.push(item, score(&mut state, item));
        }
        heap.into_sorted()
    });
    merge_sharded(n, shard_tops)
}

/// [`sharded_top_n`] driven through a block scorer: each shard's
/// candidates are scored in [`kernel::CAND_BLOCK`]-sized runs
/// (`score_block` fills one score per id, in order) and pushed into the
/// shard heap. Same bitwise-identical-to-full-sort contract as
/// [`sharded_top_n`], because the blocks preserve candidate order and
/// the block scorer is defined as the per-item scorer applied in order.
pub fn sharded_top_n_blocks<S>(
    candidates: &[u32],
    n: usize,
    shards: NonZeroUsize,
    par: Parallelism,
    init: impl Fn() -> S + Sync,
    score_block: impl Fn(&mut S, &[u32], &mut Vec<f64>) + Sync,
) -> Vec<(u32, f64)> {
    let ranges = gmlfm_par::block_ranges(candidates.len(), shards.get());
    let shard_tops = gmlfm_par::par_map(par, &ranges, |range| {
        let mut state = init();
        let mut heap = TopNHeap::new(n);
        let mut scores = Vec::with_capacity(kernel::CAND_BLOCK);
        for block in candidates[range.clone()].chunks(kernel::CAND_BLOCK) {
            scores.clear();
            score_block(&mut state, block, &mut scores);
            for (&item, &score) in block.iter().zip(&scores) {
                heap.push(item, score);
            }
        }
        heap.into_sorted()
    });
    merge_sharded(n, shard_tops)
}

/// Full-candidate top-N scan at a requested [`Precision`], or `None`
/// when the exact f64 path should run instead (precision is
/// [`Precision::F64`], the model carries no low-precision tables, or
/// its second-order form has no decoupled squared-Euclidean delta).
///
/// * [`Precision::F32`] returns the approximate scores directly — see
///   the README "Kernels" section for the error bound and tie-order
///   caveat.
/// * [`Precision::I8`] scans with the quantized tables into a
///   [`rerank_pool`]-sized pool, then re-scores the pool with the exact
///   f64 ranker ([`exact_rerank`]) — returned scores are bitwise the
///   model's.
#[allow(clippy::too_many_arguments)]
pub fn scan_top_n_prec<S: ItemFeatureSource + ?Sized + Sync>(
    model: &FrozenModel,
    items: &S,
    candidates: &[u32],
    template: &[u32],
    item_slots: &[usize],
    n: usize,
    precision: Precision,
    shards: NonZeroUsize,
    par: Parallelism,
) -> Option<Vec<(u32, f64)>> {
    // One up-front probe so the per-shard constructor below can't fail.
    model.low_ranker(template, item_slots, precision)?;
    let approx = |pool_n: usize| {
        let ranges = gmlfm_par::block_ranges(candidates.len(), shards.get());
        let shard_tops = gmlfm_par::par_map(par, &ranges, |range| {
            let Some(mut low) = model.low_ranker(template, item_slots, precision) else {
                return Vec::new();
            };
            let mut heap = TopNHeap::new(pool_n);
            let mut scores = Vec::with_capacity(kernel::CAND_BLOCK);
            for block in candidates[range.clone()].chunks(kernel::CAND_BLOCK) {
                scores.clear();
                low.approx_score_block(items, block, &mut scores);
                for (&item, &score) in block.iter().zip(&scores) {
                    heap.push(item, score);
                }
            }
            heap.into_sorted()
        });
        merge_sharded(pool_n, shard_tops)
    };
    match precision {
        Precision::F64 => None,
        Precision::F32 => Some(approx(n)),
        Precision::I8 => {
            let pool = approx(rerank_pool(n));
            Some(exact_rerank(model, items, pool, template, item_slots, n))
        }
    }
}

/// Re-scores a candidate pool with the exact f64 ranker and returns the
/// top `n` under [`rank_cmp`] — the step that makes every approximate
/// probe's returned scores bitwise the model's.
pub fn exact_rerank<S: ItemFeatureSource + ?Sized>(
    model: &FrozenModel,
    items: &S,
    pool: Vec<(u32, f64)>,
    template: &[u32],
    item_slots: &[usize],
    n: usize,
) -> Vec<(u32, f64)> {
    let mut ranker = model.ranker(template, item_slots);
    let mut out: Vec<(u32, f64)> = pool
        .into_iter()
        .map(|(id, _)| (id, ranker.score(items.features_of(id))))
        .collect();
    out.sort_by(rank_cmp);
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full-sort reference: stable sort of all scored candidates by the
    /// shared total order, truncated.
    fn full_sort(scored: &[(u32, f64)], n: usize) -> Vec<(u32, f64)> {
        let mut all = scored.to_vec();
        all.sort_by(rank_cmp);
        all.truncate(n);
        all
    }

    /// A deterministic, collision-rich scoring function: many candidates
    /// share a score, so tie ordering is actually exercised.
    fn chunky_score(item: u32) -> f64 {
        ((item.wrapping_mul(2_654_435_761)) % 17) as f64 * 0.5 - 4.0
    }

    #[test]
    fn heap_matches_full_sort_with_heavy_ties() {
        for n in [0usize, 1, 3, 10, 50, 200] {
            let scored: Vec<(u32, f64)> = (0..150u32).map(|i| (i, chunky_score(i))).collect();
            let mut heap = TopNHeap::new(n);
            for &(i, s) in &scored {
                heap.push(i, s);
            }
            assert_eq!(heap.into_sorted(), full_sort(&scored, n), "n={n}");
        }
    }

    #[test]
    fn threshold_rejects_without_entering() {
        let mut heap = TopNHeap::new(2);
        assert!(heap.threshold().is_none(), "not full yet");
        assert!(heap.push(4, 1.0));
        assert!(heap.push(9, 3.0));
        assert_eq!(heap.threshold(), Some((4, 1.0)), "worst retained is the cutoff");
        assert!(!heap.push(5, 0.5), "below the threshold");
        assert!(!heap.push(5, 1.0), "tied score, higher id than the cutoff");
        assert!(heap.push(3, 1.0), "tied score, lower id beats the cutoff");
        assert_eq!(heap.threshold(), Some((3, 1.0)));
        assert_eq!(heap.into_sorted(), vec![(9, 3.0), (3, 1.0)]);
    }

    #[test]
    fn zero_n_retains_nothing() {
        let mut heap = TopNHeap::new(0);
        assert!(!heap.push(0, f64::INFINITY));
        assert!(heap.is_empty());
        assert!(heap.threshold().is_none());
        assert!(heap.into_sorted().is_empty());
    }

    #[test]
    fn duplicate_candidates_are_retained_like_the_sort() {
        // The same item offered three times with the same score: the
        // full sort keeps duplicates, so the heap must too.
        let scored = vec![(7u32, 2.0), (7, 2.0), (1, 1.0), (7, 2.0)];
        let mut heap = TopNHeap::new(3);
        for &(i, s) in &scored {
            heap.push(i, s);
        }
        assert_eq!(heap.into_sorted(), full_sort(&scored, 3));
    }

    #[test]
    fn merge_is_shard_count_independent() {
        let scored: Vec<(u32, f64)> = (0..97u32).map(|i| (i, chunky_score(i))).collect();
        let reference = full_sort(&scored, 10);
        for shards in [1usize, 2, 3, 8, 97, 200] {
            let ranges = gmlfm_par::block_ranges(scored.len(), shards);
            let tops: Vec<Vec<(u32, f64)>> = ranges
                .into_iter()
                .map(|r| {
                    let mut heap = TopNHeap::new(10);
                    for &(i, s) in &scored[r] {
                        heap.push(i, s);
                    }
                    heap.into_sorted()
                })
                .collect();
            assert_eq!(merge_sharded(10, tops), reference, "shards={shards}");
        }
    }

    #[test]
    fn sharded_top_n_matches_reference_across_shards_and_threads() {
        let candidates: Vec<u32> = (0..211u32).collect();
        let scored: Vec<(u32, f64)> = candidates.iter().map(|&i| (i, chunky_score(i))).collect();
        for n in [1usize, 5, 211, 221] {
            let reference = full_sort(&scored, n);
            for shards in [1usize, 3, 8] {
                for threads in [1usize, 2, 5] {
                    let got = sharded_top_n(
                        &candidates,
                        n,
                        NonZeroUsize::new(shards).expect("non-zero"),
                        Parallelism::threads(threads),
                        || (),
                        |(), item| chunky_score(item),
                    );
                    assert_eq!(got, reference, "n={n} shards={shards} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn all_equal_scores_rank_by_item_id() {
        let candidates: Vec<u32> = (0..40u32).rev().collect();
        let got = sharded_top_n(
            &candidates,
            5,
            NonZeroUsize::new(4).expect("non-zero"),
            Parallelism::serial(),
            || (),
            |(), _| 0.25,
        );
        assert_eq!(got, vec![(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25), (4, 0.25)]);
    }
}
