//! Fixed-width chunked scoring kernels for the serving hot loops.
//!
//! Every dot product, squared distance, and scaled accumulation on the
//! candidate-scan path (`rank.rs` cross deltas, `frozen.rs` decoupled
//! sums, `index.rs` probe geometry) funnels through this module. The
//! kernels are plain safe Rust — no intrinsics, no `unsafe` — but they
//! are *shaped* so LLVM auto-vectorizes them: the inner loop runs over
//! [`LANES`]-wide `chunks_exact` windows into [`LANES`] independent
//! accumulators (breaking the serial floating-point dependency chain),
//! and the accumulators collapse through a fixed pairwise tree. A
//! scalar remainder loop handles the tail, so slices shorter than one
//! chunk (the common small-`k` case) reduce in exactly the same order
//! as the historical serial loop.
//!
//! Determinism contract: for a given slice length the reduction order
//! is fixed, so every kernel is bit-reproducible across calls, thread
//! counts, and machines with the same FP semantics. `mul_add` is
//! deliberately avoided — baseline x86-64 has no FMA, so `mul_add`
//! lowers to a libm call and changes results besides being slow.
//!
//! The naive single-accumulator references (`naive_*`) are kept both as
//! the parity oracle for the ≤1e-12 kernel tests and as the honest
//! "old path" baseline for `bench_report`'s kernel section.

/// Accumulator width of the chunked kernels.
///
/// Eight f64 lanes = two 256-bit AVX registers (or four 128-bit SSE2
/// registers), enough independent chains to hide FP-add latency without
/// spilling on baseline x86-64 or aarch64.
pub const LANES: usize = 8;

/// Candidate-block width used by the batched top-N delta scan
/// ([`crate::TopNRanker::score_block`]): candidates are scored in
/// fixed-size runs with the per-request invariants hoisted out of the
/// per-candidate loop, plus a remainder run for the tail.
pub const CAND_BLOCK: usize = 32;

/// Collapses the lane accumulators through a fixed pairwise tree.
#[inline(always)]
fn reduce(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

#[inline(always)]
fn reduce_f32(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Chunked dot product `Σ aᵢ·bᵢ` over the common prefix of `a` and `b`.
///
/// For `len < LANES` this degenerates to the plain serial loop, so
/// small-`k` scores are bit-identical to the historical scalar path.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce(acc) + tail
}

/// Chunked squared Euclidean distance `Σ (aᵢ−bᵢ)²`.
///
/// Differences are formed before squaring (never expanded into
/// `‖a‖²+‖b‖²−2⟨a,b⟩`), so the result is accurate even when `a ≈ b` —
/// this is the cancellation-free primitive the near-duplicate paths in
/// `rank.rs` lean on.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce(acc) + tail
}

/// Chunked scaled accumulation `y ← y + alpha·x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let (xh, xt) = x[..n].split_at(n - n % LANES);
    let (yh, yt) = y[..n].split_at_mut(n - n % LANES);
    for (xc, yc) in xh.chunks_exact(LANES).zip(yh.chunks_exact_mut(LANES)) {
        for l in 0..LANES {
            yc[l] += alpha * xc[l];
        }
    }
    for (x, y) in xt.iter().zip(yt) {
        *y += alpha * x;
    }
}

/// f32 twin of [`dot`], used by the low-precision scan tables.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce_f32(acc) + tail
}

/// f32 twin of [`sq_dist`].
#[inline]
pub fn sq_dist_f32(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce_f32(acc) + tail
}

/// Dequantizes one i8 row with per-row affine parameters into `out`:
/// `out[d] = lo + scale·(code[d] + 128)`.
///
/// Codes span `[-128, 127]`, mapped onto `[lo, lo + 255·scale]`; the
/// straight-line loop auto-vectorizes without manual chunking.
#[inline]
pub fn dequant_into(codes: &[i8], lo: f32, scale: f32, out: &mut [f32]) {
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = lo + scale * (c as i32 + 128) as f32;
    }
}

/// Single-accumulator reference for [`dot`]: the historical serial loop.
pub fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Single-accumulator reference for [`sq_dist`].
pub fn naive_sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Single-accumulator reference for [`axpy`].
pub fn naive_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (y, x) in y.iter_mut().zip(x) {
        *y += alpha * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::init::standard_normal;
    use gmlfm_tensor::seeded_rng;

    fn random_vec(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..len).map(|_| standard_normal(&mut rng) * 2.0 - 0.3).collect()
    }

    #[test]
    fn chunked_dot_matches_naive_within_1e12() {
        for len in [0, 1, 2, 5, 7, 8, 9, 15, 16, 17, 31, 64, 257] {
            for seed in 0..4 {
                let a = random_vec(len, seed * 2 + 1);
                let b = random_vec(len, seed * 2 + 2);
                let got = dot(&a, &b);
                let want = naive_dot(&a, &b);
                let tol = 1e-12 * want.abs().max(1.0);
                assert!((got - want).abs() <= tol, "len={len} seed={seed}: chunked {got} vs naive {want}");
            }
        }
    }

    #[test]
    fn chunked_sq_dist_matches_naive_within_1e12() {
        for len in [0, 1, 3, 7, 8, 9, 16, 23, 64, 130] {
            for seed in 0..4 {
                let a = random_vec(len, 100 + seed * 2);
                let b = random_vec(len, 101 + seed * 2);
                let got = sq_dist(&a, &b);
                let want = naive_sq_dist(&a, &b);
                let tol = 1e-12 * want.abs().max(1.0);
                assert!((got - want).abs() <= tol, "len={len} seed={seed}: chunked {got} vs naive {want}");
            }
        }
    }

    #[test]
    fn sub_chunk_inputs_reduce_bitwise_like_the_serial_loop() {
        // Below one LANES window the kernels must be *bit-identical* to
        // the serial reference, so small-k scores don't move at all.
        // (len = 0 is excluded: `Iterator::sum` folds from `-0.0`, so
        // the naive empty reduction is `-0.0` where the kernels return
        // `+0.0` — no scoring path dots a zero-length slice, k >= 1.)
        for len in 1..LANES {
            let a = random_vec(len, 7);
            let b = random_vec(len, 8);
            assert_eq!(dot(&a, &b).to_bits(), naive_dot(&a, &b).to_bits(), "dot len={len}");
            assert_eq!(sq_dist(&a, &b).to_bits(), naive_sq_dist(&a, &b).to_bits(), "sq_dist len={len}");
        }
    }

    #[test]
    fn axpy_matches_naive_within_1e12() {
        for len in [0, 1, 7, 8, 9, 40, 129] {
            let x = random_vec(len, 21);
            let mut y = random_vec(len, 22);
            let mut y_ref = y.clone();
            axpy(0.37, &x, &mut y);
            naive_axpy(0.37, &x, &mut y_ref);
            for (got, want) in y.iter().zip(&y_ref) {
                assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0), "len={len}");
            }
        }
    }

    #[test]
    fn sq_dist_is_cancellation_free_on_near_duplicates() {
        // a and b differ by one ulp in one coordinate: the expanded
        // q-form loses everything, the difference form keeps it exact.
        let a = random_vec(12, 33);
        let mut b = a.clone();
        b[5] = f64::from_bits(b[5].to_bits() + 1);
        let d = sq_dist(&a, &b);
        let exact = (a[5] - b[5]) * (a[5] - b[5]);
        assert!(d > 0.0 && (d - exact).abs() <= 1e-12 * exact, "d={d} exact={exact}");
    }

    #[test]
    fn f32_kernels_match_f64_within_single_precision() {
        for len in [1, 5, 8, 9, 40] {
            let a = random_vec(len, 51);
            let b = random_vec(len, 52);
            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let scale = dot(&a, &a).abs().max(dot(&b, &b).abs()).max(1.0);
            assert!((dot_f32(&a32, &b32) as f64 - dot(&a, &b)).abs() <= 1e-5 * scale);
            assert!((sq_dist_f32(&a32, &b32) as f64 - sq_dist(&a, &b)).abs() <= 1e-5 * scale);
        }
    }

    #[test]
    fn dequant_reconstruction_error_is_at_most_half_a_step() {
        let vals = random_vec(37, 61);
        let (lo, hi) = vals.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let scale = ((hi - lo) / 255.0).max(f64::MIN_POSITIVE);
        let codes: Vec<i8> = vals
            .iter()
            .map(|&v| (((v - lo) / scale).round() as i32 - 128).clamp(-128, 127) as i8)
            .collect();
        let mut out = vec![0.0f32; vals.len()];
        dequant_into(&codes, lo as f32, scale as f32, &mut out);
        for (orig, deq) in vals.iter().zip(&out) {
            assert!((orig - *deq as f64).abs() <= 0.5 * scale + 1e-6, "orig={orig} deq={deq} scale={scale}");
        }
    }
}
