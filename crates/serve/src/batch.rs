//! Chunked batch scoring for frozen models.
//!
//! The frozen path has no per-batch graph to amortise, but serving still
//! processes requests in chunks — the same [`gmlfm_train::EVAL_CHUNK_SIZE`]
//! unit the autograd eval path uses — so downstream consumers (request
//! schedulers, progress reporting, future parallel sharding) see one
//! consistent batching granularity across both paths.

use crate::frozen::FrozenModel;
use gmlfm_data::Instance;
use std::num::NonZeroUsize;

/// Scores `instances` in chunks of `chunk_size`, in order. The chunk
/// size is a [`NonZeroUsize`], matching
/// [`gmlfm_train::GraphModel::predict_chunked`], so an empty chunk is
/// unrepresentable rather than a runtime panic.
pub fn score_chunked(model: &FrozenModel, instances: &[&Instance], chunk_size: NonZeroUsize) -> Vec<f64> {
    let mut out = Vec::with_capacity(instances.len());
    for chunk in instances.chunks(chunk_size.get()) {
        for inst in chunk {
            out.push(model.predict(inst));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::SecondOrder;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;

    #[test]
    fn chunking_is_invisible_in_the_output() {
        let mut rng = seeded_rng(3);
        let v = normal(&mut rng, 12, 3, 0.0, 0.5);
        let w = normal(&mut rng, 1, 12, 0.0, 0.1).into_vec();
        let model = FrozenModel::from_parts(0.5, w, v, SecondOrder::Dot);
        let insts: Vec<Instance> = (0..37).map(|i| Instance::new(vec![i % 12, (i + 5) % 12], 1.0)).collect();
        let refs: Vec<&Instance> = insts.iter().collect();
        let whole = score_chunked(&model, &refs, NonZeroUsize::new(usize::MAX).unwrap());
        for chunk_size in [1, 2, 7, 37, 64] {
            let chunk_size = NonZeroUsize::new(chunk_size).unwrap();
            assert_eq!(score_chunked(&model, &refs, chunk_size), whole, "chunk {chunk_size}");
        }
    }
}
