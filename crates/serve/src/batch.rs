//! Chunked batch scoring for frozen models, serial and parallel.
//!
//! The frozen path has no per-batch graph to amortise, but serving still
//! processes requests in chunks — the same [`gmlfm_train::EVAL_CHUNK_SIZE`]
//! unit the autograd eval path uses — so downstream consumers (request
//! schedulers, progress reporting, parallel sharding) see one consistent
//! batching granularity across both paths. The chunk is also the unit of
//! parallel work: [`score_chunked_par`] hands whole chunks to pool
//! workers and merges the per-chunk outputs in input order, so the
//! result is **bit-identical** to the serial loop at every thread count
//! (per-instance prediction is pure; only the schedule changes).

use crate::frozen::FrozenModel;
use gmlfm_data::Instance;
use gmlfm_par::Parallelism;
use std::num::NonZeroUsize;

/// Scores `instances` in chunks of `chunk_size`, in order, on the
/// calling thread. The chunk size is a [`NonZeroUsize`], matching
/// [`gmlfm_train::GraphModel::predict_chunked`], so an empty chunk is
/// unrepresentable rather than a runtime panic.
pub fn score_chunked(model: &FrozenModel, instances: &[Instance], chunk_size: NonZeroUsize) -> Vec<f64> {
    score_chunked_par(model, instances, chunk_size, Parallelism::serial())
}

/// [`score_chunked`] with the chunks partitioned across `par` workers of
/// the global [`gmlfm_par`] pool. Outputs are merged in input order and
/// are bit-identical to the serial evaluation for every thread count;
/// `Parallelism::serial()` (or `GMLFM_THREADS=1`) never touches the
/// pool.
pub fn score_chunked_par(
    model: &FrozenModel,
    instances: &[Instance],
    chunk_size: NonZeroUsize,
    par: Parallelism,
) -> Vec<f64> {
    gmlfm_par::par_chunks(par, instances, chunk_size, |chunk| {
        chunk.iter().map(|inst| model.predict(inst)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::SecondOrder;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;

    fn model_and_instances() -> (FrozenModel, Vec<Instance>) {
        let mut rng = seeded_rng(3);
        let v = normal(&mut rng, 12, 3, 0.0, 0.5);
        let w = normal(&mut rng, 1, 12, 0.0, 0.1).into_vec();
        let model = FrozenModel::from_parts(0.5, w, v, SecondOrder::Dot);
        let insts: Vec<Instance> = (0..37).map(|i| Instance::new(vec![i % 12, (i + 5) % 12], 1.0)).collect();
        (model, insts)
    }

    #[test]
    fn chunking_is_invisible_in_the_output() {
        let (model, insts) = model_and_instances();
        let whole = score_chunked(&model, &insts, NonZeroUsize::new(usize::MAX).unwrap());
        for chunk_size in [1, 2, 7, 37, 64] {
            let chunk_size = NonZeroUsize::new(chunk_size).unwrap();
            assert_eq!(score_chunked(&model, &insts, chunk_size), whole, "chunk {chunk_size}");
        }
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_serial() {
        let (model, insts) = model_and_instances();
        let chunk = NonZeroUsize::new(5).unwrap();
        let serial = score_chunked(&model, &insts, chunk);
        for threads in [1usize, 2, 3, 5] {
            let par = score_chunked_par(&model, &insts, chunk, Parallelism::threads(threads));
            assert_eq!(par, serial, "threads {threads}");
        }
    }
}
