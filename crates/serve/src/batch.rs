//! Chunked batch scoring for frozen models.
//!
//! The frozen path has no per-batch graph to amortise, but serving still
//! processes requests in chunks — the same [`gmlfm_train::EVAL_CHUNK_SIZE`]
//! unit the autograd eval path uses — so downstream consumers (request
//! schedulers, progress reporting, future parallel sharding) see one
//! consistent batching granularity across both paths.

use crate::frozen::FrozenModel;
use gmlfm_data::Instance;

/// Scores `instances` in chunks of `chunk_size`, in order.
pub fn score_chunked(model: &FrozenModel, instances: &[&Instance], chunk_size: usize) -> Vec<f64> {
    assert!(chunk_size > 0, "score_chunked: chunk size must be positive");
    let mut out = Vec::with_capacity(instances.len());
    for chunk in instances.chunks(chunk_size) {
        for inst in chunk {
            out.push(model.predict(inst));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::SecondOrder;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;

    #[test]
    fn chunking_is_invisible_in_the_output() {
        let mut rng = seeded_rng(3);
        let v = normal(&mut rng, 12, 3, 0.0, 0.5);
        let w = normal(&mut rng, 1, 12, 0.0, 0.1).into_vec();
        let model = FrozenModel::from_parts(0.5, w, v, SecondOrder::Dot);
        let insts: Vec<Instance> = (0..37).map(|i| Instance::new(vec![i % 12, (i + 5) % 12], 1.0)).collect();
        let refs: Vec<&Instance> = insts.iter().collect();
        let whole = score_chunked(&model, &refs, usize::MAX);
        for chunk_size in [1, 2, 7, 37, 64] {
            assert_eq!(score_chunked(&model, &refs, chunk_size), whole, "chunk {chunk_size}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_is_rejected() {
        let model = FrozenModel::from_parts(0.0, vec![], gmlfm_tensor::Matrix::zeros(0, 2), SecondOrder::Dot);
        let _ = score_chunked(&model, &[], 0);
    }
}
