//! # gmlfm-par
//!
//! Std-only parallel execution for the GML-FM workspace: a persistent
//! [scoped thread pool](pool::ThreadPool), data-parallel helpers over
//! slices and index ranges, and the [`hogwild::RacySlice`] cell that
//! powers the trainers' opt-in Hogwild! epoch mode.
//!
//! The vendored dependency set has no rayon, so this crate provides the
//! minimal primitives the serving/eval/training hot paths need:
//!
//! * [`par_map`] / [`par_chunks`] — order-preserving maps whose merged
//!   output is **bit-identical** to the serial evaluation for pure
//!   per-element functions, at every thread count. Serving and
//!   evaluation ride on these, which is what lets the eval protocols
//!   stay exactly reproducible while scaling across cores.
//! * [`par_blocks`] — the indexed building block: splits `0..n` into
//!   contiguous blocks (one per requested thread) and concatenates the
//!   per-block outputs in input order. Use it when each worker wants its
//!   own scratch state (e.g. a `TopNRanker` per block of users).
//! * [`par_map_reduce`] — indexed map-reduce; partial results are
//!   reduced in block order. Deterministic for a fixed [`Parallelism`],
//!   but floating-point reductions re-associate across thread counts —
//!   prefer the map helpers when bit-stability across counts matters.
//!
//! How many threads run is a per-call [`Parallelism`] value, defaulting
//! to [`Parallelism::auto`]: the `GMLFM_THREADS` environment variable
//! when set, otherwise [`std::thread::available_parallelism`]. Passing
//! [`Parallelism::serial`] (or any count of 1) makes that call run
//! inline on the calling thread without touching the pool. Setting
//! `GMLFM_THREADS=1` serialises every *defaulted* call the same way and
//! shrinks the global pool to one worker — but a caller that passes an
//! explicit `Parallelism::threads(n > 1)` still partitions its work and
//! dispatches to the (single-worker, hence sequentially draining) pool;
//! the env var changes defaults, it does not override explicit
//! requests. Results are unaffected either way: the order-preserving
//! helpers are bit-identical at every thread count.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod hogwild;
pub mod pool;

pub use hogwild::RacySlice;
pub use pool::{Scope, ThreadPool};

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::OnceLock;

/// Environment variable that sets the workspace's default parallelism
/// — the [`Parallelism::auto`] value and the [`global`] pool size.
/// `GMLFM_THREADS=1` makes every defaulted call run inline and leaves a
/// one-worker pool for explicit requests; read once per process.
pub const THREADS_ENV: &str = "GMLFM_THREADS";

/// How many threads a parallel helper may use for one call.
///
/// This is a *request*, independent of the [`global`] pool's size: work
/// is partitioned into this many blocks, and the pool schedules the
/// blocks on however many workers it owns. Results of the order-
/// preserving helpers do not depend on either number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// The ambient default: `GMLFM_THREADS` when set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`]
    /// (falling back to 1 when even that is unavailable).
    ///
    /// Resolved **once per process** and cached: `available_parallelism`
    /// costs microseconds per call (affinity/cgroup inspection), which
    /// would dominate small serving batches if paid per request. Set
    /// `GMLFM_THREADS` before the process starts; later changes to the
    /// environment are not observed.
    pub fn auto() -> Self {
        static AUTO: OnceLock<Parallelism> = OnceLock::new();
        *AUTO.get_or_init(|| {
            if let Ok(raw) = std::env::var(THREADS_ENV) {
                if let Ok(n) = raw.trim().parse::<usize>() {
                    return Self::threads(n);
                }
            }
            let n = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
            Self::threads(n)
        })
    }

    /// Exactly `n` threads; `0` is clamped to `1` (serial).
    pub fn threads(n: usize) -> Self {
        Self(NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"))
    }

    /// The single-threaded escape hatch: helpers run inline, no pool.
    pub fn serial() -> Self {
        Self::threads(1)
    }

    /// The requested thread count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// The requested thread count as a [`NonZeroUsize`] — the form the
    /// sharded-retrieval helpers consume, with non-zeroness carried by
    /// the type instead of re-asserted at call sites.
    pub fn get_nonzero(self) -> NonZeroUsize {
        self.0
    }

    /// True when this request runs inline on the calling thread.
    pub fn is_serial(self) -> bool {
        self.0.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

/// The process-wide pool the `par_*` helpers run on, built on first use
/// with [`Parallelism::auto`] workers.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(NonZeroUsize::new(Parallelism::auto().get()).expect("non-zero")))
}

/// Splits `0..n` into at most `blocks` contiguous, near-equal ranges in
/// order (the first `n % blocks` ranges are one element longer).
///
/// This is the partition every `par_*` helper uses internally; it is
/// public so callers that need an *explicit* shard structure — notably
/// serving's sharded top-N retrieval, whose shard count is independent
/// of the worker count — cut their work the same way.
pub fn block_ranges(n: usize, blocks: usize) -> Vec<Range<usize>> {
    let blocks = blocks.min(n).max(1);
    let base = n / blocks;
    let extra = n % blocks;
    let mut out = Vec::with_capacity(blocks);
    let mut start = 0;
    for b in 0..blocks {
        let len = base + usize::from(b < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Maps `f` over `items`, preserving order. The output is bit-identical
/// to `items.iter().map(f).collect()` for pure `f`, at every
/// [`Parallelism`]: items are split into contiguous blocks and the
/// per-block outputs are concatenated in input order.
pub fn par_map<T: Sync, R: Send>(par: Parallelism, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if par.is_serial() || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let blocks = block_ranges(items.len(), par.get());
    let mut outs: Vec<Vec<R>> = Vec::new();
    outs.resize_with(blocks.len(), Vec::new);
    let f = &f;
    global().scoped(|s| {
        for (range, out) in blocks.into_iter().zip(outs.iter_mut()) {
            let block = &items[range];
            s.spawn(move || *out = block.iter().map(f).collect());
        }
    });
    outs.into_iter().flatten().collect()
}

/// Applies `f` to fixed-size chunks of `items` (the last chunk may be
/// short) and concatenates the outputs in chunk order — the parallel
/// counterpart of serving's chunked batch scoring. Chunks are scheduled
/// dynamically, so uneven per-chunk cost balances across workers; the
/// merged output is still bit-identical to the serial chunk loop for
/// pure `f`.
pub fn par_chunks<T: Sync, R: Send>(
    par: Parallelism,
    items: &[T],
    chunk_size: NonZeroUsize,
    f: impl Fn(&[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let n_chunks = items.len().div_ceil(chunk_size.get().max(1));
    if par.is_serial() || n_chunks < 2 {
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(chunk_size.get()) {
            out.extend(f(chunk));
        }
        return out;
    }
    let mut outs: Vec<Vec<R>> = Vec::new();
    outs.resize_with(n_chunks, Vec::new);
    let f = &f;
    global().scoped(|s| {
        for (chunk, out) in items.chunks(chunk_size.get()).zip(outs.iter_mut()) {
            s.spawn(move || *out = f(chunk));
        }
    });
    outs.into_iter().flatten().collect()
}

/// Splits `0..n` into one contiguous block per requested thread, runs
/// `f` on each block, and concatenates the outputs in block order.
///
/// This is the "per-worker scratch" primitive: each invocation of `f`
/// owns its whole block, so it can build local state once (rankers,
/// reusable buffers) and stream through its range. Output order — and
/// therefore the merged result for pure `f` — matches the serial
/// `f(0..n)` evaluation exactly.
pub fn par_blocks<R: Send>(par: Parallelism, n: usize, f: impl Fn(Range<usize>) -> Vec<R> + Sync) -> Vec<R> {
    if par.is_serial() || n < 2 {
        return f(0..n);
    }
    let blocks = block_ranges(n, par.get());
    let mut outs: Vec<Vec<R>> = Vec::new();
    outs.resize_with(blocks.len(), Vec::new);
    let f = &f;
    global().scoped(|s| {
        for (range, out) in blocks.into_iter().zip(outs.iter_mut()) {
            s.spawn(move || *out = f(range));
        }
    });
    outs.into_iter().flatten().collect()
}

/// Indexed map-reduce over `0..n`: each block folds `map(i)` with
/// `reduce`, and the per-block partials are reduced in block order.
/// Returns `None` for `n == 0`.
///
/// Deterministic for a fixed [`Parallelism`]; across *different* thread
/// counts a floating-point `reduce` re-associates, so pin the thread
/// count (or use [`par_map`]) where bit-stability matters.
pub fn par_map_reduce<A: Send>(
    par: Parallelism,
    n: usize,
    map: impl Fn(usize) -> A + Sync,
    reduce: impl Fn(A, A) -> A + Sync,
) -> Option<A> {
    let fold_range = |range: Range<usize>| {
        let mut acc: Option<A> = None;
        for i in range {
            let v = map(i);
            acc = Some(match acc {
                Some(a) => reduce(a, v),
                None => v,
            });
        }
        acc
    };
    if par.is_serial() || n < 2 {
        return fold_range(0..n);
    }
    let blocks = block_ranges(n, par.get());
    let mut outs: Vec<Option<A>> = Vec::new();
    outs.resize_with(blocks.len(), || None);
    let fold_range = &fold_range;
    global().scoped(|s| {
        for (range, out) in blocks.into_iter().zip(outs.iter_mut()) {
            s.spawn(move || *out = fold_range(range));
        }
    });
    outs.into_iter().flatten().reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_the_input_in_order() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for blocks in [1usize, 2, 3, 5, 8] {
                let ranges = block_ranges(n, blocks);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} blocks={blocks}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} blocks={blocks}");
                assert!(ranges.len() <= blocks.max(1));
            }
        }
    }

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1usize, 2, 3, 5, 16] {
            let got = par_map(Parallelism::threads(t), &items, |x| x * 3 + 1);
            assert_eq!(got, serial, "threads={t}");
        }
    }

    #[test]
    fn par_chunks_matches_serial_chunking() {
        let items: Vec<i64> = (0..1001).collect();
        let chunk = NonZeroUsize::new(64).unwrap();
        let serial: Vec<i64> = items.iter().map(|x| -x).collect();
        for t in [1usize, 2, 4] {
            let got = par_chunks(Parallelism::threads(t), &items, chunk, |c| c.iter().map(|x| -x).collect());
            assert_eq!(got, serial, "threads={t}");
        }
    }

    #[test]
    fn par_blocks_concatenates_in_input_order() {
        for t in [1usize, 2, 5] {
            let got = par_blocks(Parallelism::threads(t), 100, |range| range.collect());
            let want: Vec<usize> = (0..100).collect();
            assert_eq!(got, want, "threads={t}");
        }
    }

    #[test]
    fn par_map_reduce_sums_and_handles_empty() {
        assert_eq!(par_map_reduce(Parallelism::threads(4), 0, |i| i, |a, b| a + b), None);
        for t in [1usize, 2, 5] {
            let got = par_map_reduce(Parallelism::threads(t), 101, |i| i as u64, |a, b| a + b);
            assert_eq!(got, Some(5050), "threads={t}");
        }
    }

    #[test]
    fn parallelism_clamps_and_reports() {
        assert!(Parallelism::threads(0).is_serial());
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::threads(4).get(), 4);
        assert!(!Parallelism::threads(4).is_serial());
        assert!(Parallelism::auto().get() >= 1);
    }

    #[test]
    fn global_pool_is_usable() {
        let n = global().threads();
        assert!(n >= 1);
        let out = par_map(Parallelism::threads(2), &[1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
