//! The scoped thread pool.
//!
//! A [`ThreadPool`] owns a fixed set of persistent worker threads fed
//! from one shared FIFO queue. Work enters through [`ThreadPool::scoped`],
//! which hands the caller a [`Scope`] whose jobs may borrow from the
//! caller's stack: the scope blocks until every job it spawned has
//! finished, so those borrows never outlive the data they point into
//! (the same contract as [`std::thread::scope`], amortised over
//! long-lived workers instead of fresh OS threads per call).
//!
//! While a scope waits it *helps*: it pops queued jobs — its own or
//! another scope's — and runs them inline. That keeps nested scopes
//! (a parallel job that itself fans out) deadlock-free even when every
//! worker is busy, and lets a pool of one worker still drain arbitrarily
//! many queued jobs.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A type-erased unit of work. Jobs are `'static` from the queue's point
/// of view; [`Scope::spawn`] is the only producer of non-`'static`
/// closures and guarantees they complete before their borrows expire.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool handle and its workers.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn push(&self, job: Job) {
        self.queue.lock().expect("gmlfm-par: queue poisoned").push_back(job);
        self.job_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("gmlfm-par: queue poisoned").pop_front()
    }
}

/// A fixed-size pool of persistent worker threads with scoped execution.
///
/// Most callers never construct one: [`crate::global`] lazily builds a
/// process-wide pool sized by [`crate::Parallelism::auto`], and the
/// `par_*` helpers in this crate run on it. Build a private pool only
/// when a test or benchmark needs an isolated worker set.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns a pool with exactly `threads` persistent workers.
    pub fn new(threads: NonZeroUsize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads.get())
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gmlfm-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("gmlfm-par: failed to spawn worker thread")
            })
            .collect();
        Self { shared, workers, threads: threads.get() }
    }

    /// Number of worker threads in this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] whose jobs may borrow from the current
    /// stack frame. Returns once `f` *and every job it spawned* have
    /// completed. Panics (after all jobs finish) if any job panicked.
    pub fn scoped<'pool, 'scope, R>(&'pool self, f: impl FnOnce(&Scope<'pool, 'scope>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            _scope: PhantomData,
        };
        let out = f(&scope);
        scope.wait();
        // ORDERING: Acquire pairs with the Release store in
        // `ScopeState::run` — a panic flag raised by any job is visible
        // here once `wait` has observed that job's completion.
        if scope.state.panicked.load(Ordering::Acquire) {
            panic!("gmlfm-par: a scoped job panicked");
        }
        out
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // ORDERING: Release pairs with the workers' Acquire load — any
        // writes made before requesting shutdown are visible to a worker
        // that observes the flag and exits.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("gmlfm-par: queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // ORDERING: Acquire pairs with the Release store in
                // `ThreadPool::drop`; a worker that sees the flag also
                // sees everything the dropping thread did before it.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.job_ready.wait(queue).expect("gmlfm-par: queue poisoned");
            }
        };
        job();
    }
}

/// Completion tracking for one scope: a count of in-flight jobs plus a
/// flag recording whether any of them panicked.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    /// Runs a job body, recording a panic instead of unwinding into the
    /// worker, then marks the job complete.
    fn run(&self, body: impl FnOnce()) {
        if catch_unwind(AssertUnwindSafe(body)).is_err() {
            // ORDERING: Release pairs with the Acquire load in
            // `ThreadPool::scoped`; the flag is published before the
            // pending count below signals this job's completion.
            self.panicked.store(true, Ordering::Release);
        }
        let mut pending = self.pending.lock().expect("gmlfm-par: scope poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scoped`]. Jobs
/// spawned here may borrow anything that outlives `'scope`.
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, so the borrow checker pins spawned
    /// closures to the exact scope lifetime (the [`std::thread::scope`]
    /// trick).
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` on the pool. The closure may borrow data living at
    /// least as long as `'scope`; the scope's exit blocks on its
    /// completion.
    pub fn spawn<F: FnOnce() + Send + 'scope>(&self, f: F) {
        *self.state.pending.lock().expect("gmlfm-par: scope poisoned") += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || state.run(f));
        // SAFETY: the job is erased to `'static` so it can sit in the
        // shared queue, but it never outlives `'scope`: `wait` (called by
        // `scoped` and again by `Drop` as an unwind guard) blocks until
        // `pending` reaches zero, i.e. until this closure has run to
        // completion, before any `'scope` borrow it captured can expire.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.shared.push(job);
    }

    /// Blocks until every job spawned on this scope has completed,
    /// helping to drain the pool's queue while waiting (which keeps
    /// nested scopes deadlock-free).
    fn wait(&self) {
        loop {
            {
                let pending = self.state.pending.lock().expect("gmlfm-par: scope poisoned");
                if *pending == 0 {
                    return;
                }
            }
            // Help: run any queued job (ours or another scope's).
            if let Some(job) = self.pool.shared.try_pop() {
                job();
                continue;
            }
            // Nothing runnable here — our remaining jobs are in flight on
            // workers. Sleep briefly; the timed wait sidesteps any missed
            // wake-up between the pending check and the condvar park.
            let pending = self.state.pending.lock().expect("gmlfm-par: scope poisoned");
            if *pending == 0 {
                return;
            }
            let _ = self
                .state
                .done
                .wait_timeout(pending, Duration::from_millis(1))
                .expect("gmlfm-par: scope poisoned");
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        // Unwind guard: if the `scoped` closure panics with jobs still in
        // flight, their stack borrows must stay valid until they finish.
        self.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn pool(n: usize) -> ThreadPool {
        ThreadPool::new(NonZeroUsize::new(n).unwrap())
    }

    #[test]
    fn scoped_jobs_borrow_stack_data() {
        let pool = pool(3);
        let mut out = vec![0usize; 8];
        pool.scoped(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn more_jobs_than_workers_all_run() {
        let pool = pool(2);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_worker_pool_drains_many_jobs() {
        let pool = pool(1);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = pool(2);
        let counter = AtomicUsize::new(0);
        pool.scoped(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    // A job that itself fans out on the same pool.
                    crate::global().scoped(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panicking_job_propagates_after_all_jobs_finish() {
        let pool = pool(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    let c = Arc::clone(&c2);
                    s.spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the job panic");
        assert_eq!(counter.load(Ordering::Relaxed), 10, "surviving jobs still ran");
    }

    #[test]
    fn scoped_returns_closure_value() {
        let pool = pool(2);
        let got = pool.scoped(|_| 42);
        assert_eq!(got, 42);
    }
}
