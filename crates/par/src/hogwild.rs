//! Shared-parameter cells for Hogwild!-style lock-free SGD.
//!
//! Hogwild! (Recht et al., NeurIPS 2011) runs SGD workers over shared
//! parameters *without locks*: when updates are sparse, collisions are
//! rare and the occasional lost update is statistically benign, so
//! throughput scales with cores while the optimiser still converges.
//! [`RacySlice`] is the workspace's building block for that mode: a
//! bounds-checked shared-mutable view of an `f64` parameter buffer.
//!
//! All access goes through relaxed atomics on the `u64` bit patterns —
//! never torn, never language-level undefined behaviour, and compiled
//! to plain loads/stores on x86-64 and AArch64 — so the only "race" is
//! the *semantic* one Hogwild embraces:
//!
//! * [`RacySlice::add`] is a non-atomic read-modify-write (an atomic
//!   load, an add, an atomic store): two workers updating the same
//!   index concurrently may lose one delta. Acceptable **only** for
//!   sparse optimiser updates where collisions are rare.
//! * [`RacySlice::fetch_add`] is a lossless CAS loop for *dense* cells
//!   (global intercepts), which every worker touches on every instance
//!   — outside the sparse-collision regime, so lost updates there would
//!   bias the parameter rather than add noise.
//! * No control flow may depend on two reads agreeing; values drift
//!   under concurrent writers and results are not reproducible run to
//!   run.
//!
//! The wrapper is the sole way the buffer is touched for the duration
//! of the borrow (guaranteed by construction: [`RacySlice::new`] takes
//! `&mut`, so the borrow checker excludes every safe alias). Trainers
//! expose this as an **opt-in** epoch mode (off by default) and
//! document that opting in trades bit-for-bit reproducibility for
//! parallel throughput.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

// The cells reinterpret `f64` slots as `AtomicU64` in place, which is
// only sound when the layouts agree. Holds on every 64-bit platform the
// workspace targets; a 32-bit target with 4-byte `f64` alignment fails
// here at compile time instead of misbehaving at run time.
const _: () = assert!(
    std::mem::size_of::<f64>() == std::mem::size_of::<AtomicU64>()
        && std::mem::align_of::<f64>() == std::mem::align_of::<AtomicU64>(),
    "RacySlice requires f64 and AtomicU64 to share size and alignment"
);

/// A shared-mutable view of an `f64` parameter buffer for Hogwild
/// workers. See the [module docs](self) for the benign-race contract.
pub struct RacySlice<'a> {
    ptr: *mut f64,
    len: usize,
    _borrow: PhantomData<&'a mut [f64]>,
}

// SAFETY: the whole point of the type — shared mutation across worker
// threads. All access is bounds checked and goes through relaxed
// atomics; the `&mut` constructor borrow rules out safe aliases.
unsafe impl Send for RacySlice<'_> {}
// SAFETY: same argument as `Send` above — every access path is a
// bounds-checked relaxed atomic on the exclusively borrowed buffer, so
// shared references across threads cannot introduce data races beyond
// the documented benign-race contract.
unsafe impl Sync for RacySlice<'_> {}

impl<'a> RacySlice<'a> {
    /// Wraps a parameter buffer. The exclusive borrow keeps every other
    /// (safe) access out for the wrapper's lifetime.
    pub fn new(data: &'a mut [f64]) -> Self {
        Self { ptr: data.as_mut_ptr(), len: data.len(), _borrow: PhantomData }
    }

    /// Number of elements in the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element's storage as an atomic word.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    fn cell(&self, i: usize) -> &AtomicU64 {
        assert!(i < self.len, "RacySlice: index {i} out of bounds for length {}", self.len);
        // SAFETY: `i` is bounds-checked above, `ptr` covers `len`
        // elements for the duration of the exclusive borrow, and the
        // const assertion pins the f64/AtomicU64 layout match.
        unsafe { &*(self.ptr.add(i) as *const AtomicU64) }
    }

    /// Relaxed read of element `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        // ORDERING: Relaxed by contract — Hogwild reads tolerate stale
        // values and no control flow may depend on cross-cell ordering
        // (module docs); the atomic only rules out torn reads.
        f64::from_bits(self.cell(i).load(Ordering::Relaxed))
    }

    /// Relaxed write of element `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn store(&self, i: usize, value: f64) {
        // ORDERING: Relaxed by contract — no reader orders against this
        // write (module docs); the atomic only rules out torn writes.
        self.cell(i).store(value.to_bits(), Ordering::Relaxed);
    }

    /// `buf[i] += delta` as a load-add-store (NOT an atomic
    /// read-modify-write: a concurrent `add` on the same index may be
    /// lost). The Hogwild fast path for *sparse* updates, where
    /// collisions are rare.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn add(&self, i: usize, delta: f64) {
        let cell = self.cell(i);
        // ORDERING: Relaxed on both halves — the read-modify-write is
        // deliberately non-atomic (a racing `add` may be lost, the
        // documented sparse-update trade); stronger orderings would not
        // change that, only slow the hot loop down.
        let cur = f64::from_bits(cell.load(Ordering::Relaxed));
        // ORDERING: Relaxed — the store half of the same deliberately
        // non-atomic pair; see the comment above the load.
        cell.store((cur + delta).to_bits(), Ordering::Relaxed);
    }

    /// `buf[i] += delta` as a lossless compare-exchange loop: no delta
    /// is ever dropped, only the accumulation order is nondeterministic.
    /// Use for *dense* cells every worker hits (global intercepts),
    /// where the sparse-collision argument behind [`RacySlice::add`]
    /// does not apply.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn fetch_add(&self, i: usize, delta: f64) {
        let cell = self.cell(i);
        // ORDERING: Relaxed — losslessness comes from the CAS retry
        // loop itself (every delta lands on *some* observed value), not
        // from inter-thread ordering; nothing is published through this
        // cell (module docs), so Acquire/Release would buy nothing.
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            // ORDERING: Relaxed success and failure — see the loop-level
            // justification above; the failure load only reseeds `cur`.
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::num::NonZeroUsize;

    #[test]
    fn single_threaded_semantics_match_a_plain_slice() {
        let mut data = vec![1.0, 2.0, 3.0];
        {
            let cell = RacySlice::new(&mut data);
            assert_eq!(cell.len(), 3);
            assert!(!cell.is_empty());
            cell.add(0, 0.5);
            cell.fetch_add(1, -0.25);
            cell.store(2, -1.0);
            assert_eq!(cell.load(0), 1.5);
            assert_eq!(cell.load(1), 1.75);
        }
        assert_eq!(data, vec![1.5, 1.75, -1.0]);
    }

    #[test]
    fn disjoint_parallel_updates_are_exact() {
        // Workers writing disjoint index ranges race on nothing, so the
        // result is exact — the "sparse updates rarely collide" regime
        // Hogwild relies on, in its collision-free limit.
        let pool = ThreadPool::new(NonZeroUsize::new(4).unwrap());
        let mut data = vec![0.0; 64];
        {
            let cell = RacySlice::new(&mut data);
            let cell = &cell;
            pool.scoped(|s| {
                for w in 0..4 {
                    s.spawn(move || {
                        for i in (w * 16)..((w + 1) * 16) {
                            for _ in 0..10 {
                                cell.add(i, 1.0);
                            }
                        }
                    });
                }
            });
        }
        assert!(data.iter().all(|&v| v == 10.0));
    }

    #[test]
    fn fetch_add_on_one_contended_cell_loses_nothing() {
        // Unlike `add`, the CAS loop must account for every delta even
        // when all workers hammer the same index.
        let pool = ThreadPool::new(NonZeroUsize::new(4).unwrap());
        let mut data = vec![0.0];
        {
            let cell = RacySlice::new(&mut data);
            let cell = &cell;
            pool.scoped(|s| {
                for _ in 0..4 {
                    s.spawn(move || {
                        for _ in 0..2_000 {
                            cell.fetch_add(0, 1.0);
                        }
                    });
                }
            });
        }
        assert_eq!(data[0], 8_000.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_panics() {
        let mut data = vec![0.0; 2];
        let cell = RacySlice::new(&mut data);
        let _ = cell.load(2);
    }
}
