//! # gml-fm
//!
//! Facade crate for the GML-FM workspace: a from-scratch Rust
//! reproduction of *Enhancing Factorization Machines with Generalized
//! Metric Learning* (ICDE'23 / TKDE; arXiv:2006.11600).
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `gmlfm-tensor` | dense `f64` matrices, seeded init, Cholesky |
//! | [`autograd`] | `gmlfm-autograd` | tape-based reverse-mode AD, gradient checks |
//! | [`data`] | `gmlfm-data` | schemas, synthetic Table-2 datasets, splits, sampling |
//! | [`train`] | `gmlfm-train` | SGD/Adam, squared + BPR losses, trainers |
//! | [`models`] | `gmlfm-models` | the twelve baselines the paper compares against |
//! | [`core`] | `gmlfm-core` | **GML-FM** itself: distances, transforms, efficient evaluation, persistence |
//! | [`serve`] | `gmlfm-serve` | autograd-free serving: `Freeze`, `FrozenModel`, top-N ranking via Eq. 10/11 |
//! | [`eval`] | `gmlfm-eval` | RMSE/HR/NDCG/MRR/AUC, protocols, significance tests |
//! | [`tsne`] | `gmlfm-tsne` | exact t-SNE for the embedding case study |
//!
//! ## Minimal end-to-end example
//!
//! ```
//! use gml_fm::core::{GmlFm, GmlFmConfig};
//! use gml_fm::data::{generate, rating_split, DatasetSpec, FieldMask};
//! use gml_fm::eval::evaluate_rating;
//! use gml_fm::train::{fit_regression, TrainConfig};
//!
//! // A tiny seeded dataset and the paper's rating protocol.
//! let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.15));
//! let mask = FieldMask::all(&dataset.schema);
//! let split = rating_split(&dataset, &mask, 2, 7);
//!
//! // GML-FM with the deep (1-layer) distance, trained with Adam.
//! let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(8, 1));
//! let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! fit_regression(&mut model, &split.train, Some(&split.val), &cfg);
//!
//! // Freeze for serving: evaluation runs tape-free through the paper's
//! // Eq. 10/11 decoupled form (see `gml_fm::serve`).
//! use gml_fm::serve::Freeze;
//! let metrics = evaluate_rating(&model.freeze(), &split.test);
//! assert!(metrics.rmse.is_finite());
//! ```
//!
//! See `examples/` for complete scenarios and the `repro` binary
//! (`gmlfm-experiments`) for regenerating every table and figure of the
//! paper.

pub use gmlfm_autograd as autograd;
pub use gmlfm_core as core;
pub use gmlfm_data as data;
pub use gmlfm_eval as eval;
pub use gmlfm_models as models;
pub use gmlfm_serve as serve;
pub use gmlfm_tensor as tensor;
pub use gmlfm_train as train;
pub use gmlfm_tsne as tsne;
