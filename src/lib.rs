//! # gml-fm
//!
//! Facade crate for the GML-FM workspace: a from-scratch Rust
//! reproduction of *Enhancing Factorization Machines with Generalized
//! Metric Learning* (ICDE'23 / TKDE; arXiv:2006.11600).
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `gmlfm-tensor` | dense `f64` matrices, seeded init, Cholesky |
//! | [`autograd`] | `gmlfm-autograd` | tape-based reverse-mode AD, gradient checks |
//! | [`data`] | `gmlfm-data` | schemas, synthetic Table-2 datasets, splits, sampling |
//! | [`train`] | `gmlfm-train` | SGD/Adam, squared + BPR losses, trainers |
//! | [`models`] | `gmlfm-models` | the twelve baselines the paper compares against |
//! | [`par`] | `gmlfm-par` | scoped thread pool, `par_map`/`par_chunks`/`par_blocks`, Hogwild cells |
//! | [`core`] | `gmlfm-core` | **GML-FM** itself: distances, transforms, efficient evaluation, persistence |
//! | [`serve`] | `gmlfm-serve` | autograd-free serving: `Freeze`, `FrozenModel`, Eq. 10/11 ranking, sharded bounded-heap top-N |
//! | [`service`] | `gmlfm-service` | **online serving API**: typed requests/responses, hot-swappable `ModelServer` |
//! | [`net`] | `gmlfm-net` | **fault-tolerant TCP serving**: length-prefixed JSON frames, deadlines, backpressure, graceful drain |
//! | [`online`] | `gmlfm-online` | **online learning loop**: streaming ingest, warm-start retraining, eval-gated hot swap |
//! | [`engine`] | `gmlfm-engine` | **unified pipeline**: `ModelSpec` → `Engine::builder()` → `Recommender` → versioned `Artifact` |
//! | [`eval`] | `gmlfm-eval` | RMSE/HR/NDCG/MRR/AUC, protocols, significance tests |
//! | [`tsne`] | `gmlfm-tsne` | exact t-SNE for the embedding case study |
//!
//! ## Minimal end-to-end example
//!
//! The engine is the front door: declare a model as a [`engine::ModelSpec`],
//! run the fluent pipeline, and get back a servable
//! [`engine::Recommender`] that scores, ranks, evaluates and persists
//! itself as a versioned artifact.
//!
//! ```
//! use gml_fm::data::{generate, DatasetSpec};
//! use gml_fm::engine::{Engine, ModelSpec, SplitPlan};
//!
//! // A tiny seeded dataset, the paper's rating protocol, and GML-FM
//! // with the deep (1-layer) distance — one declarative pipeline.
//! let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.15));
//! let rec = Engine::builder()
//!     .dataset(dataset)
//!     .split(SplitPlan::rating(7))
//!     .spec(ModelSpec::gml_fm_dnn(8, 1))
//!     .fit()
//!     .expect("pipeline");
//!
//! // Evaluation runs tape-free through the frozen serving path.
//! let metrics = rec.evaluate_rating().expect("rating holdout");
//! assert!(metrics.rmse.is_finite());
//!
//! // The same handle persists as a versioned, servable artifact.
//! let artifact = rec.artifact().expect("GML-FM freezes").to_json();
//! let served = Engine::load_json(&artifact).expect("restore");
//! assert_eq!(served.top_n(0, 5).expect("rank").len(), 5);
//! ```
//!
//! The crate-level APIs (`core::GmlFm`, `train::fit_regression`,
//! `serve::Freeze`, ...) remain available as the engine's internals for
//! custom protocols. See `examples/` for complete scenarios and the
//! `repro` binary (`gmlfm-experiments`) for regenerating every table and
//! figure of the paper.

pub use gmlfm_autograd as autograd;
pub use gmlfm_core as core;
pub use gmlfm_data as data;
pub use gmlfm_engine as engine;
pub use gmlfm_eval as eval;
pub use gmlfm_models as models;
pub use gmlfm_net as net;
pub use gmlfm_online as online;
pub use gmlfm_par as par;
pub use gmlfm_serve as serve;
pub use gmlfm_service as service;
pub use gmlfm_tensor as tensor;
pub use gmlfm_train as train;
pub use gmlfm_tsne as tsne;
