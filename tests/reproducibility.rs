//! Integration: the whole pipeline is bit-reproducible in its seeds —
//! the property that makes the `repro` harness trustworthy.

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, loo_split, rating_split, DatasetSpec, FieldMask};
use gml_fm::eval::{evaluate_rating, evaluate_topn};
use gml_fm::train::{fit_regression, TrainConfig};

fn rating_pipeline(seed: u64) -> f64 {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(seed).scaled(0.2));
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, seed ^ 1);
    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(8, 1).with_seed(seed ^ 2));
    let cfg = TrainConfig { epochs: 5, seed: seed ^ 3, ..TrainConfig::default() };
    fit_regression(&mut model, &split.train, Some(&split.val), &cfg);
    evaluate_rating(&model, &split.test).rmse
}

#[test]
fn identical_seeds_give_identical_metrics() {
    assert_eq!(rating_pipeline(11).to_bits(), rating_pipeline(11).to_bits());
}

#[test]
fn different_seeds_give_different_metrics() {
    assert_ne!(rating_pipeline(11).to_bits(), rating_pipeline(12).to_bits());
}

#[test]
fn topn_pipeline_is_reproducible() {
    let run = || {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(31).scaled(0.2));
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 30, 32);
        let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::mahalanobis(8).with_seed(33));
        fit_regression(
            &mut model,
            &split.train,
            None,
            &TrainConfig { epochs: 4, seed: 34, ..TrainConfig::default() },
        );
        let m = evaluate_topn(&model, &dataset, &mask, &split.test, 10);
        (m.hr.to_bits(), m.ndcg.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn dropout_training_is_still_seed_deterministic() {
    let run = || {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(41).scaled(0.2));
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, 42);
        let mut cfg = GmlFmConfig::dnn(8, 2).with_seed(43);
        cfg.dropout = 0.5; // heavy dropout exercises the mask RNG
        let mut model = GmlFm::new(dataset.schema.total_dim(), &cfg);
        fit_regression(
            &mut model,
            &split.train,
            None,
            &TrainConfig { epochs: 4, seed: 44, ..TrainConfig::default() },
        );
        evaluate_rating(&model, &split.test).rmse.to_bits()
    };
    assert_eq!(run(), run());
}
