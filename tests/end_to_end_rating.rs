//! Integration: the full rating-prediction pipeline (Table 3's protocol)
//! across generator → split → training → evaluation, spanning all crates.

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, rating_split, DatasetSpec, FieldMask};
use gml_fm::eval::evaluate_rating;
use gml_fm::models::{fm::FmConfig, FactorizationMachine};
use gml_fm::train::{fit_regression, TrainConfig};

fn trivial_rmse(test: &[gml_fm::data::Instance], train: &[gml_fm::data::Instance]) -> f64 {
    let mean = train.iter().map(|i| i.label).sum::<f64>() / train.len() as f64;
    (test.iter().map(|i| (mean - i.label).powi(2)).sum::<f64>() / test.len() as f64).sqrt()
}

#[test]
fn gmlfm_beats_the_mean_predictor_on_rating() {
    // MovieLens is the densest configuration — the one where rating
    // prediction has enough per-user evidence at test scale (sparser
    // sets mainly separate models on the ranking task; see EXPERIMENTS.md).
    let dataset = generate(&DatasetSpec::MovieLens.config(5).scaled(0.3));
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, 9);
    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    let cfg = TrainConfig { epochs: 12, ..TrainConfig::default() };
    fit_regression(&mut model, &split.train, Some(&split.val), &cfg);
    let metrics = evaluate_rating(&model, &split.test);
    let trivial = trivial_rmse(&split.test, &split.train);
    assert!(
        metrics.rmse < trivial * 0.95,
        "GML-FM RMSE {} should clearly beat the mean predictor {}",
        metrics.rmse,
        trivial
    );
    assert!(metrics.mae <= metrics.rmse + 1e-9, "MAE never exceeds RMSE");
}

#[test]
fn vanilla_fm_also_learns_the_same_split() {
    let dataset = generate(&DatasetSpec::AmazonOffice.config(5).scaled(0.25));
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, 9);
    let mut fm =
        FactorizationMachine::new(dataset.schema.total_dim(), FmConfig { epochs: 25, ..FmConfig::default() });
    fm.fit(&split.train);
    let metrics = evaluate_rating(&fm, &split.test);
    let trivial = trivial_rmse(&split.test, &split.train);
    assert!(metrics.rmse < trivial * 1.02, "FM RMSE {} vs trivial {}", metrics.rmse, trivial);
}

#[test]
fn validation_early_stopping_restores_best_parameters() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(6).scaled(0.25));
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, 10);
    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::mahalanobis(8));
    let cfg = TrainConfig { epochs: 30, patience: 2, ..TrainConfig::default() };
    let report = fit_regression(&mut model, &split.train, Some(&split.val), &cfg);
    // The restored model's validation RMSE equals the best seen.
    let val_metrics = evaluate_rating(&model, &split.val);
    assert!(
        (val_metrics.rmse - report.best_val_rmse).abs() < 1e-9,
        "restored params ({}) should match best-val snapshot ({})",
        val_metrics.rmse,
        report.best_val_rmse
    );
}
