//! Integration: the leave-one-out top-n pipeline (Table 4's protocol)
//! for representatives of every model family.

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, loo_split, DatasetSpec, FieldMask};
use gml_fm::eval::evaluate_topn;
use gml_fm::models::{mf::MfConfig, nfm::NfmConfig, BprMf, Nfm, PairCodec};
use gml_fm::train::{fit_regression, TrainConfig};

/// With 1 positive ranked among 20 negatives, random HR@10 ≈ 10/21.
/// Use a threshold comfortably above it.
const N_CANDIDATES: usize = 99;
const RANDOM_HR: f64 = 10.0 / 100.0;

#[test]
fn gmlfm_ranks_far_better_than_random() {
    let dataset = generate(&DatasetSpec::AmazonOffice.config(15).scaled(0.3));
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, N_CANDIDATES, 4);
    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(&mut model, &split.train, None, &TrainConfig { epochs: 12, ..TrainConfig::default() });
    let m = evaluate_topn(&model, &dataset, &mask, &split.test, 10);
    assert!(m.hr > RANDOM_HR * 2.0, "HR {} should be well above random {}", m.hr, RANDOM_HR);
    assert!(m.ndcg > 0.0 && m.ndcg <= m.hr, "NDCG {} bounded by HR {}", m.ndcg, m.hr);
}

#[test]
fn bpr_and_nfm_rank_better_than_random() {
    let dataset = generate(&DatasetSpec::AmazonOffice.config(15).scaled(0.3));
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, N_CANDIDATES, 4);

    let codec = PairCodec::from_schema(&dataset.schema);
    let mut bpr = BprMf::new(codec, MfConfig { epochs: 30, lr: 0.05, ..MfConfig::default() });
    bpr.fit(&split.train_pairs, &split.train_user_items);
    let m = evaluate_topn(&bpr, &dataset, &mask, &split.test, 10);
    assert!(m.hr > RANDOM_HR * 1.5, "BPR HR {}", m.hr);

    let mut nfm = Nfm::new(dataset.schema.total_dim(), &NfmConfig::default());
    fit_regression(&mut nfm, &split.train, None, &TrainConfig { epochs: 12, ..TrainConfig::default() });
    let m = evaluate_topn(&nfm, &dataset, &mask, &split.test, 10);
    assert!(m.hr > RANDOM_HR * 1.5, "NFM HR {}", m.hr);
}

#[test]
fn side_information_helps_on_sparse_data() {
    // The paper's core sparse-data claim, testable end-to-end: on a
    // Mercari-like dataset, GML-FM with all attributes should beat the
    // same model restricted to user+item ids (Table 6's base row).
    let dataset = generate(&DatasetSpec::MercariTicket.config(16).scaled(0.3));
    let full_mask = FieldMask::all(&dataset.schema);
    let base_mask = FieldMask::base(&dataset.schema);
    let tc = TrainConfig { epochs: 12, ..TrainConfig::default() };

    let full_split = loo_split(&dataset, &full_mask, 2, N_CANDIDATES, 6);
    let mut full = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(&mut full, &full_split.train, None, &tc);
    let full_m = evaluate_topn(&full, &dataset, &full_mask, &full_split.test, 10);

    let base_split = loo_split(&dataset, &base_mask, 2, N_CANDIDATES, 6);
    let mut base = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(&mut base, &base_split.train, None, &tc);
    let base_m = evaluate_topn(&base, &dataset, &base_mask, &base_split.test, 10);

    assert!(
        full_m.hr > base_m.hr,
        "attributes should help on sparse data: full {} vs base {}",
        full_m.hr,
        base_m.hr
    );
}
