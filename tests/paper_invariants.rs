//! Integration: the paper's mathematical claims checked through the
//! public API, end to end.

use gml_fm::core::{DenseGmlFm, DenseTransform, Distance, DnnTransform, GmlFm, GmlFmConfig};
use gml_fm::data::{generate_with_truth, DatasetSpec};
use gml_fm::tensor::init::normal;
use gml_fm::tensor::linalg::is_positive_semi_definite;
use gml_fm::tensor::seeded_rng;

/// Section 3.2.1: any `M = LᵀL` is PSD, so the learned Mahalanobis metric
/// is always valid — including after arbitrary "training" perturbations.
#[test]
fn learned_mahalanobis_matrix_is_always_psd() {
    let mut rng = seeded_rng(3);
    for _ in 0..20 {
        let l = normal(&mut rng, 8, 8, 0.0, 1.0);
        let m = l.matmul_tn(&l);
        assert!(is_positive_semi_definite(&m, 1e-9));
    }
}

/// Section 3.3: the simplified and naive second-order forms agree on a
/// trained-model-scale configuration for all three distance families.
#[test]
fn efficient_form_agrees_with_naive_at_model_scale() {
    let (n, k) = (200, 16);
    let mut rng = seeded_rng(5);
    let v = normal(&mut rng, n, k, 0.0, 0.3);
    let h = normal(&mut rng, 1, k, 0.0, 0.3).into_vec();
    let l = normal(&mut rng, k, k, 0.0, 0.3);
    let transforms = [
        DenseTransform::Identity,
        DenseTransform::Mahalanobis(l.matmul_tn(&l)),
        DenseTransform::Dnn(DnnTransform {
            weights: vec![normal(&mut rng, k, k, 0.0, 0.4), normal(&mut rng, k, k, 0.0, 0.4)],
            biases: vec![normal(&mut rng, 1, k, 0.0, 0.1), normal(&mut rng, 1, k, 0.0, 0.1)],
        }),
    ];
    let x: Vec<f64> = normal(&mut rng, 1, n, 0.0, 1.0).into_vec();
    for transform in transforms {
        let model = DenseGmlFm { v: v.clone(), h: h.clone(), transform };
        let naive = model.second_order_naive(&x);
        let efficient = model.second_order_efficient(&x);
        assert!(
            (naive - efficient).abs() < 1e-8 * naive.abs().max(1.0),
            "naive {naive} vs efficient {efficient}"
        );
    }
}

/// Section 3.5: the graph-built distances match their scalar definitions
/// through a real GmlFm model.
#[test]
fn model_reference_and_graph_agree_for_every_distance() {
    use gml_fm::data::Instance;
    use gml_fm::train::Scorer;
    for distance in Distance::ALL {
        let cfg = GmlFmConfig::dnn(8, 2).with_distance(distance).with_seed(17);
        let model = GmlFm::new(40, &cfg);
        for feats in [vec![0u32, 15, 30], vec![3, 9, 22, 39]] {
            let inst = Instance::new(feats, 1.0);
            let graph = model.score_one(&inst);
            let reference = model.predict_reference(&inst);
            assert!(
                (graph - reference).abs() < 1e-9,
                "{}: graph {graph} vs reference {reference}",
                distance.name()
            );
        }
    }
}

/// The generator's ground truth is self-consistent: a user's chosen items
/// are closer (in true latent space) than random items, which is the
/// property every experiment relies on.
#[test]
fn ground_truth_positives_are_closer_than_random_items() {
    let (dataset, truth) = generate_with_truth(&DatasetSpec::AmazonAuto.config(8).scaled(0.3));
    let mut pos_scores = Vec::new();
    for it in dataset.interactions.iter().take(500) {
        pos_scores.push(truth.score(it.user as usize, it.item as usize));
    }
    let mut rng = seeded_rng(9);
    use rand::Rng;
    let mut rand_scores = Vec::new();
    for _ in 0..500 {
        let u = rng.gen_range(0..dataset.n_users);
        let i = rng.gen_range(0..dataset.n_items);
        rand_scores.push(truth.score(u, i));
    }
    let pos_mean = pos_scores.iter().sum::<f64>() / pos_scores.len() as f64;
    let rand_mean = rand_scores.iter().sum::<f64>() / rand_scores.len() as f64;
    assert!(
        pos_mean > rand_mean,
        "chosen items should be closer: positives {pos_mean} vs random {rand_mean}"
    );
}

/// Section 3.6 (Eq. 15): with unit pair weights, squared Euclidean
/// distance and equal-norm factors, GML-FM's second-order term is an
/// affine function of the vanilla FM's — checked through the relation
/// module's public helpers.
#[test]
fn fm_generalization_theorem_holds() {
    use gml_fm::core::relation::{
        fm_equivalence_constants, fm_second_order, gml_second_order, normalize_rows_to,
    };
    let mut rng = seeded_rng(21);
    let raw = normal(&mut rng, 20, 6, 0.0, 1.0);
    let c = 1.3;
    let v = normalize_rows_to(&raw, c);
    for active in [vec![0usize, 5, 11], vec![1, 2, 3, 4, 5]] {
        let gml = gml_second_order(&v, &active);
        let fm = fm_second_order(&v, &active);
        let (c1, c2) = fm_equivalence_constants(c, active.len());
        assert!((gml - (c1 * fm + c2)).abs() < 1e-9);
    }
}
